// Summary-quality drift monitors: the seeded EWMA detector and the
// deployment-level health tracker.  A stationary trace must not flag; an
// injected distribution shift must; hysteresis must keep the flag from
// flapping while the baseline re-converges.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "attack/generators.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "observe/drift.hpp"
#include "observe/health.hpp"
#include "summarize/summarizer.hpp"
#include "trace/background.hpp"

namespace jaal::observe {
namespace {

TEST(Drift, ConfigValidationRejectsNonsense) {
  DriftConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = {};
  bad.z_exit = bad.z_enter + 1.0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = {};
  bad.rel_floor = -0.1;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  EXPECT_NO_THROW(DriftDetector{DriftConfig{}});
}

TEST(Drift, WarmupSuppressesJudgment) {
  DriftConfig cfg;
  cfg.warmup = 4;
  DriftDetector d(cfg);
  // A wild jump inside the warmup window is absorbed into the baseline, not
  // judged against it.
  (void)d.observe(1.0);
  (void)d.observe(100.0);
  (void)d.observe(1.0);
  EXPECT_FALSE(d.drifting());
  EXPECT_FALSE(d.transitioned());
}

TEST(Drift, ShiftEntersAndHysteresisExitsWithoutFlapping) {
  DriftDetector d{DriftConfig{}};
  for (int i = 0; i < 6; ++i) (void)d.observe(1.0);
  EXPECT_FALSE(d.drifting());

  // A level shift: enters drift on the first judged sample...
  std::size_t transitions = 0;
  (void)d.observe(2.0);
  EXPECT_TRUE(d.drifting());
  EXPECT_TRUE(d.transitioned());
  ++transitions;
  // ...and while the EWMA re-converges onto the new level, the flag eases
  // out exactly once (z must fall to z_exit, not merely below z_enter).
  for (int i = 0; i < 40; ++i) {
    (void)d.observe(2.0);
    transitions += d.transitioned() ? 1 : 0;
  }
  EXPECT_FALSE(d.drifting());
  EXPECT_EQ(transitions, 2u);  // one start, one end — no flapping
}

TEST(Drift, StationaryNoiseStaysQuiet) {
  DriftDetector d{DriftConfig{}};
  // Deterministic small-amplitude noise around 1.0 (an LCG, no wall clock).
  std::uint64_t state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double noise = static_cast<double>(state >> 40) / (1 << 24);
    (void)d.observe(1.0 + 0.01 * (noise - 0.5));
    EXPECT_FALSE(d.drifting()) << "flagged at sample " << i;
  }
}

// Feeds one summarizer's fidelity over `epochs` batches from `source` into
// `tracker` (monitor 0), returning all drift events raised.
std::vector<HealthEvent> feed_fidelity(HealthTracker& tracker,
                                       trace::PacketSource& gen,
                                       std::size_t epochs,
                                       std::uint64_t first_epoch) {
  summarize::SummarizerConfig scfg;
  scfg.batch_size = 1000;
  scfg.min_batch = 400;
  scfg.rank = 12;
  scfg.centroids = 200;
  summarize::Summarizer summarizer(scfg);
  std::vector<HealthEvent> events;
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto batch = trace::take(gen, scfg.batch_size);
    summarize::SummarizeOutput out = summarizer.summarize(batch);
    EXPECT_TRUE(out.fidelity.has_value()) << "fidelity recording off";
    if (!out.fidelity) continue;
    out.fidelity->epoch = first_epoch + e;
    tracker.observe_fidelity(*out.fidelity);
    auto raised = tracker.end_epoch(first_epoch + e, {});
    events.insert(events.end(), raised.begin(), raised.end());
  }
  return events;
}

ObserveConfig tracker_config() {
  ObserveConfig cfg;
  cfg.drift_config.warmup = 5;  // match the jaal_doctor deployment
  return cfg;
}

// The shift source: background swamped by a near-uniform SYN flood, whose
// batches have almost no cluster structure — the summarizer's k-means
// inertia and energy statistics move far off the Trace-1 baseline.
attack::DistributedSynFlood make_flood() {
  attack::AttackConfig atk;
  atk.victim_ip = core::evaluation_victim_ip();
  atk.packets_per_second = 50000.0;
  atk.seed = 11;
  return attack::DistributedSynFlood(atk);
}

TEST(Drift, StationaryTraceRaisesNoEvents) {
  HealthTracker tracker(tracker_config(), 1);
  trace::BackgroundTraffic gen(trace::trace1_profile(), 7);
  feed_fidelity(tracker, gen, 16, 0);
  EXPECT_EQ(tracker.drift_events_total(), 0u);
  EXPECT_EQ(tracker.monitors_drifting(), 0u);
  EXPECT_DOUBLE_EQ(tracker.caution(), 0.0);
}

TEST(Drift, InjectedShiftIsFlaggedAndRaisesCaution) {
  HealthTracker tracker(tracker_config(), 1);
  trace::BackgroundTraffic baseline(trace::trace1_profile(), 7);
  feed_fidelity(tracker, baseline, 8, 0);
  ASSERT_EQ(tracker.drift_events_total(), 0u);

  attack::DistributedSynFlood flood = make_flood();
  std::vector<HealthEvent> events = feed_fidelity(tracker, flood, 2, 8);
  // Mid-episode the monitor counts as drifting, so caution is raised...
  EXPECT_GT(tracker.drift_events_total(), 0u);
  EXPECT_GT(tracker.caution(), 0.0);
  // ...and once the EWMA re-converges on the shifted regime, hysteresis
  // eases the flag (and caution) back out.
  const auto later = feed_fidelity(tracker, flood, 6, 10);
  events.insert(events.end(), later.begin(), later.end());
  bool saw_start = false;
  for (const HealthEvent& e : events) {
    saw_start |= e.kind == HealthEventKind::kDriftStart;
    EXPECT_GE(e.epoch, 8u) << "drift flagged before the shift";
  }
  EXPECT_TRUE(saw_start);
  EXPECT_DOUBLE_EQ(tracker.caution(), 0.0);

  const HealthReport report = tracker.report();
  EXPECT_FALSE(report.events.empty());
  EXPECT_GT(report.monitors.at(0).drift_events, 0u);
}

TEST(Drift, DisabledDriftIsInertAndCautionFree) {
  ObserveConfig cfg = tracker_config();
  cfg.drift = false;
  HealthTracker tracker(cfg, 1);
  trace::BackgroundTraffic baseline(trace::trace1_profile(), 7);
  feed_fidelity(tracker, baseline, 6, 0);
  attack::DistributedSynFlood flood = make_flood();
  feed_fidelity(tracker, flood, 6, 6);
  EXPECT_EQ(tracker.drift_events_total(), 0u);
  EXPECT_DOUBLE_EQ(tracker.caution(), 0.0);
}

// Deployment-level: the controller surfaces drift events and the caution
// signal on EpochResult, deterministically across thread counts.
TEST(Drift, ControllerSurfacesEventsDeterministically) {
  auto run = [](std::size_t threads) {
    core::JaalConfig cfg;
    cfg.summarizer.batch_size = 1000;
    cfg.summarizer.min_batch = 400;
    cfg.summarizer.rank = 12;
    cfg.summarizer.centroids = 200;
    cfg.monitor_count = 2;
    cfg.epoch_seconds = 1.0;
    cfg.threads = threads;
    cfg.observe.drift_config.warmup = 5;
    core::JaalController controller(
        cfg, rules::parse_rules(rules::default_ruleset_text(),
                                core::evaluation_rule_vars()));
    std::string log;
    trace::TraceProfile profile = trace::trace1_profile();
    profile.packets_per_second = 2000.0;
    trace::BackgroundTraffic phase1(profile, 7);
    trace::TraceProfile shifted = trace::trace2_profile();
    shifted.packets_per_second = 6000.0;
    shifted.pareto_alpha = 1.05;
    trace::BackgroundTraffic phase2(shifted, 21);
    for (auto* source : {&phase1, &phase2}) {
      for (const core::EpochResult& epoch : controller.run(*source, 6.0)) {
        for (const HealthEvent& e : epoch.drift_events) log += to_json(e) + "\n";
      }
    }
    return log;
  };
  const std::string serial = run(1);
  EXPECT_NE(serial.find("drift_start"), std::string::npos)
      << "shifted deployment raised no drift events";
  EXPECT_EQ(serial, run(2));
}

}  // namespace
}  // namespace jaal::observe
