// src/store: record framing, time-sharded logs, the deployment store's
// commit protocol, and retroactive replay.  Crash scenarios are simulated
// the only honest way available to a unit test: by corrupting / truncating
// the shard files directly and re-opening.
#include "store/store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "inference/alert_json.hpp"
#include "store/flat_record.hpp"
#include "store/flat_timeshard.hpp"
#include "store/replay.hpp"
#include "trace/background.hpp"

namespace jaal::store {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("jaal_store_test_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// ---------------------------------------------------------------- framing

TEST(FlatRecord, Crc32MatchesKnownVector) {
  // The canonical IEEE CRC-32 check value for "123456789".
  const auto check = bytes_of("123456789");
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(FlatRecord, HeaderRoundTripsLittleEndian) {
  RecordHeader h;
  h.payload_len = 0x01020304u;
  h.crc32 = 0xA1B2C3D4u;
  h.epoch = 0x1122334455667788ull;
  h.stream = 7;
  h.kind = static_cast<std::uint32_t>(RecordKind::kEpochMeta);
  std::uint8_t buf[kRecordHeaderBytes];
  encode_record_header(h, buf);
  // Explicit little-endian: first byte of the length is the low byte.
  EXPECT_EQ(buf[0], 0x04);
  const RecordHeader d = decode_record_header(buf);
  EXPECT_EQ(d.payload_len, h.payload_len);
  EXPECT_EQ(d.crc32, h.crc32);
  EXPECT_EQ(d.epoch, h.epoch);
  EXPECT_EQ(d.stream, h.stream);
  EXPECT_EQ(d.kind, h.kind);
}

std::vector<std::uint8_t> frame(std::uint64_t epoch, std::uint32_t stream,
                                RecordKind kind,
                                std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out(kRecordHeaderBytes + payload.size());
  RecordHeader h;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.crc32 = crc32(payload);
  h.epoch = epoch;
  h.stream = stream;
  h.kind = static_cast<std::uint32_t>(kind);
  encode_record_header(h, out.data());
  std::copy(payload.begin(), payload.end(),
            out.begin() + kRecordHeaderBytes);
  return out;
}

TEST(FlatRecord, NextRecordWalksValidFramesAndStopsAtCorruption) {
  const auto p1 = bytes_of("hello");
  const auto p2 = bytes_of("world!");
  auto shard = frame(3, 1, RecordKind::kAlert, p1);
  const auto f2 = frame(4, 2, RecordKind::kProvenance, p2);
  shard.insert(shard.end(), f2.begin(), f2.end());

  std::size_t off = 0;
  auto r1 = next_record(shard, off);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->epoch, 3u);
  EXPECT_EQ(r1->stream, 1u);
  EXPECT_EQ(r1->kind, RecordKind::kAlert);
  ASSERT_EQ(r1->payload.size(), p1.size());
  auto r2 = next_record(shard, off);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->epoch, 4u);
  EXPECT_FALSE(next_record(shard, off).has_value());  // end of data
  EXPECT_EQ(off, shard.size());

  // A flipped payload bit fails the CRC: the walk stops there.
  auto corrupted = shard;
  corrupted[kRecordHeaderBytes] ^= 0x01;
  std::size_t coff = 0;
  EXPECT_FALSE(next_record(corrupted, coff).has_value());
  EXPECT_EQ(coff, 0u);

  // An all-zero header is pre-allocated space, not a record.
  std::vector<std::uint8_t> zeros(kRecordHeaderBytes * 2, 0);
  std::size_t zoff = 0;
  EXPECT_FALSE(next_record(zeros, zoff).has_value());

  // Unknown kinds and implausible lengths are the torn tail too.
  auto badkind = shard;
  badkind[20] = 99;  // kind field, low byte
  std::size_t koff = 0;
  EXPECT_FALSE(next_record(badkind, koff).has_value());
  auto badlen = frame(1, 0, RecordKind::kSummary, p1);
  badlen[3] = 0xFF;  // length high byte -> way past kMaxRecordPayload
  std::size_t loff = 0;
  EXPECT_FALSE(next_record(badlen, loff).has_value());

  // A header that promises more payload than the shard holds is torn.
  auto truncated = frame(1, 0, RecordKind::kSummary, p1);
  truncated.resize(truncated.size() - 2);
  std::size_t toff = 0;
  EXPECT_FALSE(next_record(truncated, toff).has_value());
}

// ----------------------------------------------------------- timeshard log

TEST(TimeShard, AppendsAndReadsBackInOrder) {
  TempDir dir("append");
  TimeShardLog log({dir.str(), "t", 64}, /*writable=*/true);
  for (std::uint64_t e = 0; e < 10; ++e) {
    const auto payload = bytes_of("payload " + std::to_string(e));
    ASSERT_TRUE(log.append(e, static_cast<std::uint32_t>(e % 3),
                           RecordKind::kAlert, payload));
  }
  EXPECT_EQ(log.records_appended(), 10u);
  EXPECT_EQ(log.last_epoch(), std::optional<std::uint64_t>{9});

  std::uint64_t expect = 0;
  log.for_each([&](const RecordView& r) {
    EXPECT_EQ(r.epoch, expect);
    EXPECT_EQ(std::string(r.payload.begin(), r.payload.end()),
              "payload " + std::to_string(expect));
    ++expect;
    return true;
  });
  EXPECT_EQ(expect, 10u);
}

TEST(TimeShard, RollsShardsAndFinalizesThemTight) {
  TempDir dir("roll");
  const auto payload = bytes_of("x");
  {
    TimeShardLog log({dir.str(), "t", 4}, /*writable=*/true);
    for (std::uint64_t e = 0; e < 10; ++e) {
      ASSERT_TRUE(log.append(e, 0, RecordKind::kAlert, payload));
    }
    const auto paths = log.shard_paths();
    ASSERT_EQ(paths.size(), 3u);  // epochs [0,4), [4,8), [8,10)
    // A rolled (finalized) shard is truncated to header + its exact data.
    EXPECT_EQ(fs::file_size(paths[0]),
              kShardHeaderBytes + 4 * (kRecordHeaderBytes + payload.size()));
  }
  // Reader sees all ten records across the three shards.
  TimeShardLog reader({dir.str(), "t", 4}, /*writable=*/false);
  std::size_t n = 0;
  reader.for_each([&](const RecordView&) { return ++n, true; });
  EXPECT_EQ(n, 10u);
}

TEST(TimeShard, EpochOrderingIsEnforced) {
  TempDir dir("order");
  TimeShardLog log({dir.str(), "t", 64}, /*writable=*/true);
  const auto payload = bytes_of("x");
  ASSERT_TRUE(log.append(5, 0, RecordKind::kAlert, payload));
  EXPECT_FALSE(log.append(3, 0, RecordKind::kAlert, payload));
  EXPECT_TRUE(log.failed());
}

TEST(TimeShard, TornTailIsTruncatedOnWriterOpen) {
  TempDir dir("torn");
  const auto payload = bytes_of("record payload");
  std::string tail_path;
  {
    TimeShardLog log({dir.str(), "t", 64}, /*writable=*/true);
    for (std::uint64_t e = 0; e < 5; ++e) {
      ASSERT_TRUE(log.append(e, 0, RecordKind::kAlert, payload));
    }
    tail_path = log.shard_paths().back();
  }
  // Simulate an interrupted append: garbage where the next frame would go.
  const auto clean_size = fs::file_size(tail_path);
  {
    std::ofstream f(tail_path, std::ios::binary | std::ios::app);
    f << "garbage bytes from a torn write";
  }
  ASSERT_GT(fs::file_size(tail_path), clean_size);

  TimeShardLog reopened({dir.str(), "t", 64}, /*writable=*/true);
  EXPECT_GT(reopened.torn_bytes_truncated(), 0u);
  EXPECT_EQ(fs::file_size(tail_path), clean_size);
  EXPECT_EQ(reopened.last_epoch(), std::optional<std::uint64_t>{4});
  std::size_t n = 0;
  reopened.for_each([&](const RecordView&) { return ++n, true; });
  EXPECT_EQ(n, 5u);
}

TEST(TimeShard, HeaderTornTailShardIsDeletedOnWriterOpen) {
  TempDir dir("headertorn");
  // A crash during roll can leave a tail shard with a half-written header.
  const fs::path stub = dir.path / "t.000001.jstore";
  {
    std::ofstream f(stub, std::ios::binary);
    f << "JST";  // not even a full magic
  }
  TimeShardLog log({dir.str(), "t", 64}, /*writable=*/true);
  EXPECT_GT(log.torn_bytes_truncated(), 0u);
  EXPECT_FALSE(fs::exists(stub));
  // The recovered log accepts appends again.
  const auto payload = bytes_of("x");
  EXPECT_TRUE(log.append(0, 0, RecordKind::kAlert, payload));
}

TEST(TimeShard, IncompatibleFormatVersionIsRefused) {
  TempDir dir("version");
  {
    TimeShardLog log({dir.str(), "t", 64}, /*writable=*/true);
    const auto payload = bytes_of("x");
    ASSERT_TRUE(log.append(0, 0, RecordKind::kAlert, payload));
  }
  const fs::path shard = dir.path / "t.000000.jstore";
  {
    // Bump the format version field ([8,12) in the header) to a future one.
    std::fstream f(shard, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const char future[4] = {99, 0, 0, 0};
    f.write(future, 4);
  }
  EXPECT_THROW(TimeShardLog({dir.str(), "t", 64}, /*writable=*/true),
               std::invalid_argument);
}

TEST(TimeShard, ChangedShardWidthIsRefusedNotWiped) {
  TempDir dir("width");
  const auto payload = bytes_of("precious committed data");
  {
    TimeShardLog log({dir.str(), "t", 4}, /*writable=*/true);
    for (std::uint64_t e = 0; e < 10; ++e) {
      ASSERT_TRUE(log.append(e, 0, RecordKind::kAlert, payload));
    }
  }
  // Reopening with a different epochs_per_shard makes every header fail
  // validation.  That must refuse the store (writer and reader alike) —
  // never be mistaken for a torn roll and deleted shard by shard.
  EXPECT_THROW(TimeShardLog({dir.str(), "t", 8}, /*writable=*/true),
               std::invalid_argument);
  EXPECT_THROW(TimeShardLog({dir.str(), "t", 8}, /*writable=*/false),
               std::invalid_argument);
  // All ten records survive a reopen with the original config.
  TimeShardLog log({dir.str(), "t", 4}, /*writable=*/true);
  std::size_t n = 0;
  log.for_each([&](const RecordView&) { return ++n, true; });
  EXPECT_EQ(n, 10u);
}

TEST(TimeShard, TornBytesCountOnlyGarbageNotPreallocatedCapacity) {
  TempDir dir("tornbytes");
  const auto payload = bytes_of("record payload");
  std::string tail_path;
  {
    TimeShardLog log({dir.str(), "t", 64}, /*writable=*/true);
    for (std::uint64_t e = 0; e < 3; ++e) {
      ASSERT_TRUE(log.append(e, 0, RecordKind::kAlert, payload));
    }
    tail_path = log.shard_paths().back();
  }
  const auto clean_size = fs::file_size(tail_path);
  const std::vector<char> zeros(1 << 20, 0);
  {
    // Crash mid-append: two bytes of a torn frame, then the zeroed
    // pre-allocated capacity the doubling growth policy left behind.
    std::ofstream f(tail_path, std::ios::binary | std::ios::app);
    f << "XY";
    f.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  {
    TimeShardLog reopened({dir.str(), "t", 64}, /*writable=*/true);
    EXPECT_EQ(reopened.torn_bytes_truncated(), 2u);
  }
  EXPECT_EQ(fs::file_size(tail_path), clean_size);
  {
    // Pure pre-allocated capacity (all zeros past the data) is not torn.
    std::ofstream f(tail_path, std::ios::binary | std::ios::app);
    f.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  TimeShardLog reopened({dir.str(), "t", 64}, /*writable=*/true);
  EXPECT_EQ(reopened.torn_bytes_truncated(), 0u);
  EXPECT_EQ(fs::file_size(tail_path), clean_size);
}

TEST(TimeShard, TruncateAfterEpochCutsShardsAndRecords) {
  TempDir dir("truncate");
  TimeShardLog log({dir.str(), "t", 4}, /*writable=*/true);
  const auto payload = bytes_of("x");
  for (std::uint64_t e = 0; e < 10; ++e) {
    ASSERT_TRUE(log.append(e, 0, RecordKind::kAlert, payload));
  }
  ASSERT_EQ(log.shard_paths().size(), 3u);
  ASSERT_TRUE(log.truncate_after_epoch(5));
  EXPECT_EQ(log.last_epoch(), std::optional<std::uint64_t>{5});
  EXPECT_EQ(log.shard_paths().size(), 2u);  // the [8,10) shard is gone
  // Appending resumes from the cut.
  ASSERT_TRUE(log.append(6, 0, RecordKind::kAlert, payload));
  std::vector<std::uint64_t> epochs;
  log.for_each([&](const RecordView& r) {
    epochs.push_back(r.epoch);
    return true;
  });
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6}));

  ASSERT_TRUE(log.truncate_after_epoch(std::nullopt));
  EXPECT_FALSE(log.last_epoch().has_value());
}

// ------------------------------------------------------- deployment store

TEST(Store, EpochMetaRoundTrips) {
  const EpochMeta m{42, 84.5, 123456, 0.75, 0.25};
  const auto payload = encode_epoch_meta(m);
  const auto d = decode_epoch_meta(42, payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->epoch, 42u);
  EXPECT_EQ(d->end_time, 84.5);
  EXPECT_EQ(d->packets, 123456u);
  EXPECT_EQ(d->report_fraction, 0.75);
  EXPECT_EQ(d->caution, 0.25);
  EXPECT_FALSE(decode_epoch_meta(42, std::span<const std::uint8_t>(
                                         payload.data(), 7))
                   .has_value());
}

summarize::MonitorSummary sample_summary(std::uint32_t monitor) {
  summarize::CombinedSummary c;
  c.monitor = monitor;
  c.centroids = linalg::Matrix{{0.25, 1.0 / 3.0}, {0.5, 0.1}};
  c.counts = {11, 22};
  return c;
}

TEST(Store, UncommittedEpochIsDroppedOnReopen) {
  TempDir dir("commit");
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    EXPECT_FALSE(store.last_committed_epoch().has_value());
    store.put_summary(0, sample_summary(1));
    store.commit_epoch({0, 2.0, 1000, 1.0, 0.0});
    // Epoch 1's summary lands but the process "dies" before the commit.
    store.put_summary(1, sample_summary(2));
    EXPECT_EQ(store.last_committed_epoch(), std::optional<std::uint64_t>{0});
  }
  DeploymentStore reopened({dir.str(), 64}, /*writable=*/true);
  EXPECT_EQ(reopened.last_committed_epoch(),
            std::optional<std::uint64_t>{0});
  std::size_t summaries = 0;
  reopened.each_summary([&](std::uint64_t epoch, std::uint32_t monitor,
                            const summarize::MonitorSummary& s) {
    EXPECT_EQ(epoch, 0u);
    EXPECT_EQ(monitor, 1u);
    // Full-fidelity storage: scalars come back bit-identical.
    const auto& c = std::get<summarize::CombinedSummary>(s);
    EXPECT_EQ(c.centroids(0, 1), 1.0 / 3.0);
    ++summaries;
    return true;
  });
  EXPECT_EQ(summaries, 1u);  // the uncommitted epoch-1 summary is gone
}

TEST(Store, ReaderSurfacesOnlyCommittedPrefix) {
  TempDir dir("readerprefix");
  inference::Alert a;
  a.sid = 7;
  a.msg = "m";
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    store.put_summary(0, sample_summary(1));
    store.put_alert(0, a, 2.0);
    store.commit_epoch({0, 2.0, 100, 1.0, 0.0});
    // Epoch 1 is half-written: records land, the commit never does.
    store.put_summary(1, sample_summary(2));
    store.put_alert(1, a, 4.0);
  }
  // A read-only open must observe the same committed prefix a writer
  // open's recovery would keep — never the half-written epoch.
  DeploymentStore reader({dir.str(), 64}, /*writable=*/false);
  EXPECT_EQ(reader.last_committed_epoch(), std::optional<std::uint64_t>{0});
  std::size_t summaries = 0, alerts = 0;
  reader.each_summary([&](std::uint64_t epoch, std::uint32_t,
                          const summarize::MonitorSummary&) {
    EXPECT_EQ(epoch, 0u);
    ++summaries;
    return true;
  });
  reader.each_alert_line(
      [&](std::uint64_t epoch, std::uint32_t, std::string_view) {
        EXPECT_EQ(epoch, 0u);
        ++alerts;
        return true;
      });
  EXPECT_EQ(summaries, 1u);
  EXPECT_EQ(alerts, 1u);
}

TEST(Store, ReplayDropsEpochWithMalformedMeta) {
  TempDir dir("badmeta");
  {
    // Craft the summaries log by hand: epoch 1's commit record is
    // CRC-valid but malformed (wrong payload size), so it cannot be
    // replayed — and its summaries must not leak into epoch 2's aggregate.
    TimeShardLog log({dir.str(), "summaries", 64}, /*writable=*/true);
    const auto put_summary = [&](std::uint64_t e, std::uint32_t mon) {
      const auto bytes = summarize::serialize(
          sample_summary(mon), summarize::WirePrecision::kFloat64);
      ASSERT_TRUE(log.append(e, mon, RecordKind::kSummary, bytes));
    };
    put_summary(0, 1);
    ASSERT_TRUE(log.append(0, 0, RecordKind::kEpochMeta,
                           encode_epoch_meta({0, 2.0, 100, 1.0, 0.0})));
    put_summary(1, 2);
    const std::vector<std::uint8_t> malformed(16, 0xAB);
    ASSERT_TRUE(log.append(1, 0, RecordKind::kEpochMeta, malformed));
    put_summary(2, 3);
    ASSERT_TRUE(log.append(2, 0, RecordKind::kEpochMeta,
                           encode_epoch_meta({2, 6.0, 100, 1.0, 0.0})));
  }
  inference::InferenceEngine engine(
      rules::parse_rules(rules::default_ruleset_text(),
                         core::evaluation_rule_vars()),
      inference::EngineConfig{});
  const StoreReplayer replayer({dir.str(), 64});
  const auto replayed = replayer.replay(engine, 1.0);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].epoch, 0u);
  EXPECT_EQ(replayed[0].summaries, 1u);
  EXPECT_EQ(replayed[1].epoch, 2u);
  // Without the discard, epoch 1's orphaned summary would inflate this.
  EXPECT_EQ(replayed[1].summaries, 1u);
}

TEST(Store, AlertAndProvenanceLinesRoundTrip) {
  TempDir dir("lines");
  inference::Alert a;
  a.sid = 1234;
  a.msg = "test alert \"quoted\"";
  a.matched_packets = 99;
  a.variance = 0.125;
  const std::string line = inference::alert_to_json(a, 6.0);
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    store.put_alert(3, a, 6.0);
    store.commit_epoch({3, 6.0, 500, 1.0, 0.0});
  }
  DeploymentStore reader({dir.str(), 64}, /*writable=*/false);
  std::size_t lines = 0;
  reader.each_alert_line(
      [&](std::uint64_t epoch, std::uint32_t sid, std::string_view got) {
        EXPECT_EQ(epoch, 3u);
        EXPECT_EQ(sid, 1234u);
        EXPECT_EQ(got, line);
        ++lines;
        return true;
      });
  EXPECT_EQ(lines, 1u);
}

// ------------------------------------------------ live pipeline + replay

core::JaalConfig store_config(const std::string& dir) {
  core::JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.monitor_count = 3;
  cfg.epoch_seconds = 0.04;
  cfg.engine.default_thresholds = {0.02, 0.02};
  cfg.engine.tau_c_scale = 1.8;
  // Replay has no raw packets, so compare against a feedback-free live run
  // (the documented equivalence).
  cfg.engine.feedback_enabled = false;
  cfg.store_dir = dir;
  return cfg;
}

std::vector<rules::Rule> ruleset() {
  return rules::parse_rules(rules::default_ruleset_text(),
                            core::evaluation_rule_vars());
}

TEST(Store, ReplayReproducesLiveAlertsByteForByte) {
  TempDir dir("replay");
  const core::JaalConfig cfg = store_config(dir.str());
  std::vector<core::EpochResult> live;
  {
    core::JaalController controller(cfg, ruleset());
    trace::BackgroundTraffic gen(trace::trace1_profile(), 11);
    live = controller.run(gen, 0.3);
    ASSERT_FALSE(controller.store()->failed());
  }
  ASSERT_GE(live.size(), 5u);

  inference::InferenceEngine engine(ruleset(), cfg.engine);
  StoreReplayer replayer({dir.str(), cfg.store_epochs_per_shard});
  const auto replayed = replayer.replay(engine, cfg.engine.tau_c_scale);
  ASSERT_EQ(replayed.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(replayed[i].end_time, live[i].end_time);
    EXPECT_EQ(replayed[i].packets, live[i].packets);
    ASSERT_EQ(replayed[i].alerts.size(), live[i].alerts.size())
        << "epoch " << i;
    for (std::size_t j = 0; j < live[i].alerts.size(); ++j) {
      EXPECT_EQ(inference::alert_to_json(replayed[i].alerts[j],
                                         replayed[i].end_time),
                inference::alert_to_json(live[i].alerts[j],
                                         live[i].end_time))
          << "epoch " << i << " alert " << j;
    }
  }
}

TEST(Store, StoredAlertLinesMatchTheLiveEncoder) {
  TempDir dir("storedlines");
  const core::JaalConfig cfg = store_config(dir.str());
  std::vector<std::string> expected;
  {
    core::JaalController controller(cfg, ruleset());
    trace::BackgroundTraffic gen(trace::trace1_profile(), 12);
    for (const auto& epoch : controller.run(gen, 0.3)) {
      for (const auto& a : epoch.alerts) {
        expected.push_back(inference::alert_to_json(a, epoch.end_time));
      }
    }
  }
  DeploymentStore reader({dir.str(), cfg.store_epochs_per_shard},
                         /*writable=*/false);
  std::vector<std::string> stored;
  reader.each_alert_line(
      [&](std::uint64_t, std::uint32_t, std::string_view line) {
        stored.emplace_back(line);
        return true;
      });
  EXPECT_EQ(stored, expected);
}

TEST(Store, StoreTelemetryCountsAppends) {
  TempDir dir("telemetry");
  telemetry::Telemetry tel;
  core::JaalConfig cfg = store_config(dir.str());
  cfg.telemetry = &tel;
  core::JaalController controller(cfg, ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 13);
  (void)controller.run(gen, 0.2);
  bool saw_records = false, saw_bytes = false;
  for (const auto& e : tel.metrics.snapshot().entries) {
    if (e.name == "jaal_store_records_total" && e.counter > 0) {
      saw_records = true;
    }
    if (e.name == "jaal_store_bytes_written_total" && e.counter > 0) {
      saw_bytes = true;
    }
  }
  EXPECT_TRUE(saw_records);
  EXPECT_TRUE(saw_bytes);
}

}  // namespace
}  // namespace jaal::store
