// End-to-end detection tests: traffic generation -> flow distribution ->
// summarization -> aggregation -> rule translation -> inference, exactly the
// pipeline of Fig. 1, on small (fast) configurations.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace jaal::core {
namespace {

using packet::AttackType;

TrialConfig fast_config(std::uint64_t seed = 1) {
  TrialConfig cfg;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 400;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;  // k/n = 0.2, the paper's sweet spot
  cfg.monitor_count = 2;           // 2000-packet window: tau_c_scale = 1
  cfg.profile = trace::trace1_profile();
  // Full-intensity attacks: these tests assert detection of the pipeline,
  // not the ROC behaviour under weak attacks.
  cfg.attack_intensity_min = 1.0;
  cfg.attack_intensity_max = 1.0;
  cfg.seed = seed;
  return cfg;
}

inference::EngineConfig plain_engine(double tau_d) {
  inference::EngineConfig cfg;
  cfg.default_thresholds = {tau_d, tau_d};
  cfg.feedback_enabled = false;
  return cfg;
}

const std::vector<rules::Rule>& ruleset() {
  static const std::vector<rules::Rule> kRules = rules::parse_rules(
      rules::default_ruleset_text(), evaluation_rule_vars());
  return kRules;
}

TEST(Integration, TrialConstructionInvariants) {
  const Trial trial = make_trial(AttackType::kDistributedSynFlood,
                                 fast_config(), 42);
  EXPECT_EQ(trial.injected, AttackType::kDistributedSynFlood);
  EXPECT_FALSE(trial.aggregate.empty());
  EXPECT_GT(trial.summary_bytes, 0u);
  EXPECT_GT(trial.raw_header_bytes, trial.summary_bytes);
  std::size_t total_packets = 0;
  for (const auto& batch : trial.monitor_packets) total_packets += batch.size();
  EXPECT_EQ(total_packets, 2u * 1000u);
  // Aggregate represents every summarized packet.
  EXPECT_LE(trial.aggregate.total_packets(), total_packets);
}

TEST(Integration, DetectsEachAttackType) {
  // Every §8 attack must be detectable at a reasonable operating point
  // while the same thresholds stay quiet on benign traffic.
  for (AttackType attack : evaluation_attacks()) {
    const Trial positive = make_trial(attack, fast_config(7), 100);
    EXPECT_TRUE(detect(positive, attack, ruleset(), plain_engine(0.02)))
        << "missed " << packet::attack_name(attack);
  }
}

TEST(Integration, BenignTrialsStayQuiet) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Trial negative = make_trial(AttackType::kNone, fast_config(seed),
                                      seed * 31);
    for (AttackType attack : evaluation_attacks()) {
      EXPECT_FALSE(detect(negative, attack, ruleset(), plain_engine(0.015)))
          << "false " << packet::attack_name(attack) << " on seed " << seed;
    }
  }
}

TEST(Integration, MiraiScanDetected) {
  const Trial trial = make_trial(AttackType::kMiraiScan, fast_config(9), 5);
  EXPECT_TRUE(detect(trial, AttackType::kMiraiScan, ruleset(),
                     plain_engine(0.02)));
}

TEST(Integration, SummariesCutCommunicationSubstantially) {
  const Trial trial = make_trial(AttackType::kNone, fast_config(3), 17);
  const double ratio = static_cast<double>(trial.summary_bytes) /
                       static_cast<double>(trial.raw_header_bytes);
  // k/n = 0.2 with the split format should land well under 0.5.
  EXPECT_LT(ratio, 0.5);
  EXPECT_GT(ratio, 0.01);
}

TEST(Integration, FeedbackImprovesOverStrictThresholdAlone) {
  // With a strict tau_d1 and loose tau_d2 + feedback, uncertain batches are
  // resolved with raw packets; TPR must be at least the strict-only TPR.
  std::vector<Trial> trials;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    trials.push_back(
        make_trial(AttackType::kDistributedSynFlood, fast_config(s), s * 7));
    trials.push_back(make_trial(AttackType::kNone, fast_config(s), s * 13));
  }
  const AttackType targets[] = {AttackType::kDistributedSynFlood};

  inference::EngineConfig strict;
  strict.default_thresholds = {0.004, 0.004};
  strict.feedback_enabled = false;
  const auto strict_only =
      evaluate_with_feedback(trials, targets, ruleset(), strict);

  inference::EngineConfig with_feedback;
  with_feedback.default_thresholds = {0.004, 0.05};
  with_feedback.feedback_enabled = true;
  const auto fb =
      evaluate_with_feedback(trials, targets, ruleset(), with_feedback);

  EXPECT_GE(fb.confusion.tpr(), strict_only.confusion.tpr());
  // Feedback costs bytes but must stay far below shipping everything.
  EXPECT_LT(fb.comm_overhead_ratio, 1.0);
  EXPECT_GE(fb.comm_overhead_ratio, strict_only.comm_overhead_ratio);
}

TEST(Integration, RocSweepMonotoneInThreshold) {
  std::vector<Trial> trials;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    trials.push_back(
        make_trial(AttackType::kPortScan, fast_config(s), s * 101));
    trials.push_back(make_trial(AttackType::kNone, fast_config(s), s * 103));
  }
  const double taus[] = {0.001, 0.005, 0.02, 0.08, 0.3};
  const double cscales[] = {1.0};
  const RocCurve curve =
      roc_sweep(trials, AttackType::kPortScan, ruleset(), taus, cscales);
  ASSERT_EQ(curve.points.size(), 5u);
  // TPR and FPR are monotone non-decreasing in tau_d at fixed tau_c.
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].tpr, curve.points[i - 1].tpr - 1e-9);
    EXPECT_GE(curve.points[i].fpr, curve.points[i - 1].fpr - 1e-9);
  }
  EXPECT_GT(curve.auc(), 0.5);
}

TEST(Integration, Trace2DetectionWorksToo) {
  // The paper evaluates on two MAWI snapshots; the second profile (heavier
  // elephant tail, shifted port mix) must also support detection.
  TrialConfig cfg = fast_config(11);
  cfg.profile = trace::trace2_profile();
  const Trial positive =
      make_trial(AttackType::kDistributedSynFlood, cfg, 200);
  EXPECT_TRUE(detect(positive, AttackType::kDistributedSynFlood, ruleset(),
                     plain_engine(0.02)));
  const Trial negative = make_trial(AttackType::kNone, cfg, 201);
  EXPECT_FALSE(detect(negative, AttackType::kDistributedSynFlood, ruleset(),
                      plain_engine(0.015)));
}

TEST(Integration, SidMappingCoversEvaluationAttacks) {
  for (AttackType attack : evaluation_attacks()) {
    EXPECT_FALSE(sids_for(attack).empty())
        << packet::attack_name(attack);
  }
  EXPECT_TRUE(sids_for(AttackType::kNone).empty());
}

}  // namespace
}  // namespace jaal::core
