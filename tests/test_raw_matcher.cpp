#include "rules/raw_matcher.hpp"

#include <gtest/gtest.h>

#include "attack/generators.hpp"
#include "trace/background.hpp"

namespace jaal::rules {
namespace {

using packet::AttackType;
using packet::PacketRecord;

RuleVars vars() {
  RuleVars v;
  v.home_net = AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
  return v;
}

std::vector<PacketRecord> syn_packets(std::size_t n, std::uint32_t src,
                                      std::uint16_t dst_port = 80) {
  std::vector<PacketRecord> out;
  for (std::size_t i = 0; i < n; ++i) {
    PacketRecord pkt;
    pkt.ip.src_ip = src;
    pkt.ip.dst_ip = packet::make_ip(203, 0, 10, 5);
    pkt.tcp.dst_port = dst_port;
    pkt.tcp.src_port = static_cast<std::uint16_t>(1024 + i);
    pkt.tcp.set(packet::TcpFlag::kSyn);
    out.push_back(pkt);
  }
  return out;
}

TEST(RawMatcher, CountThresholdGatesAlert) {
  const auto rules = parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)",
      vars());
  const RawMatcher matcher(rules);
  EXPECT_TRUE(matcher.analyze(syn_packets(150, 42), 2.0).size() == 1);
  EXPECT_TRUE(matcher.analyze(syn_packets(50, 42), 2.0).empty());
}

TEST(RawMatcher, ThresholdScalesWithWindow) {
  // count 100 in 2s; a 1s window should require ~50.
  const auto rules = parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)",
      vars());
  const RawMatcher matcher(rules);
  EXPECT_FALSE(matcher.analyze(syn_packets(60, 42), 1.0).empty());
  EXPECT_TRUE(matcher.analyze(syn_packets(40, 42), 1.0).empty());
}

TEST(RawMatcher, ZeroWindowAppliesThresholdUnscaled) {
  const auto rules = parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)",
      vars());
  const RawMatcher matcher(rules);
  EXPECT_TRUE(matcher.analyze(syn_packets(99, 42), 0.0).empty());
  EXPECT_FALSE(matcher.analyze(syn_packets(100, 42), 0.0).empty());
}

TEST(RawMatcher, ThresholdScaleMultipliesCounts) {
  const auto rules = parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)",
      vars());
  const RawMatcher matcher(rules);
  const auto window = syn_packets(100, 42);
  EXPECT_FALSE(matcher.analyze(window, 0.0, 1.0).empty());
  EXPECT_TRUE(matcher.analyze(window, 0.0, 1.01).empty());   // needs 101
  EXPECT_FALSE(matcher.analyze(window, 0.0, 0.5).empty());   // needs 50
}

TEST(RawMatcher, PerSourceTracking) {
  // 10 sources x 20 SYNs: no single source crosses 100, but the aggregate
  // does — the matcher alerts on aggregate OR per-source counts.
  const auto rules = parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"flood\"; flags:S; "
      "detection_filter: track by_src, count 100, seconds 2; sid:1;)",
      vars());
  const RawMatcher matcher(rules);
  std::vector<PacketRecord> window;
  for (std::uint32_t s = 0; s < 10; ++s) {
    const auto batch = syn_packets(20, 1000 + s);
    window.insert(window.end(), batch.begin(), batch.end());
  }
  const auto alerts = matcher.analyze(window, 2.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].matched_packets, 200u);
  EXPECT_EQ(alerts[0].max_per_source, 20u);
}

TEST(RawMatcher, VarianceGateBlocksConcentratedTraffic) {
  const auto rules = parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"scan\"; flags:S; "
      "detection_filter: count 50, seconds 2; "
      "jaal_variance: tcp.dst_port, 0.0004; sid:2;)",
      vars());
  const RawMatcher matcher(rules);
  // All to one port: variance 0 -> equivalent rule not satisfied.
  EXPECT_TRUE(matcher.analyze(syn_packets(100, 5, 80), 2.0).empty());
  // Spread over the port space: variance high -> alert.
  std::vector<PacketRecord> scan;
  for (std::size_t i = 0; i < 100; ++i) {
    auto pkt = syn_packets(1, 5, static_cast<std::uint16_t>(i * 577 + 1))[0];
    scan.push_back(pkt);
  }
  const auto alerts = matcher.analyze(scan, 2.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].variance_triggered);
}

TEST(RawMatcher, DetectsGeneratedAttacksInMixedTraffic) {
  const auto rules = parse_rules(default_ruleset_text(), vars());
  const RawMatcher matcher(rules);

  trace::BackgroundTraffic background(trace::trace1_profile(), 3);
  attack::AttackConfig acfg;
  acfg.victim_ip = packet::make_ip(203, 0, 10, 5);
  acfg.packets_per_second = 5000.0;
  acfg.seed = 4;
  attack::DistributedSynFlood flood(acfg);

  std::vector<PacketRecord> window = trace::take(background, 4000);
  for (int i = 0; i < 400; ++i) window.push_back(flood.next());

  const auto alerts = matcher.analyze(window, 2.0);
  bool ddos = false;
  for (const auto& a : alerts) ddos |= a.sid == 1000002;
  EXPECT_TRUE(ddos);
}

TEST(RawMatcher, CleanTrafficRaisesNoFloodAlerts) {
  const auto rules = parse_rules(default_ruleset_text(), vars());
  const RawMatcher matcher(rules);
  trace::BackgroundTraffic background(trace::trace1_profile(), 5);
  const auto window = trace::take(background, 4000);
  for (const auto& alert : matcher.analyze(window, 2.0)) {
    // Benign backbone traffic must not trip flood/scan/sockstress rules.
    EXPECT_EQ(alert.sid, 0u) << "unexpected alert: " << alert.msg;
  }
}

TEST(RawMatcher, EmptyWindowYieldsNothing) {
  const auto rules = parse_rules(default_ruleset_text(), vars());
  EXPECT_TRUE(RawMatcher(rules).analyze({}, 2.0).empty());
}

}  // namespace
}  // namespace jaal::rules
