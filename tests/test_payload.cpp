#include "payload/term_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::payload {
namespace {

TEST(Vocabulary, ValidatesInput) {
  EXPECT_THROW(Vocabulary({}), std::invalid_argument);
  EXPECT_THROW(Vocabulary({"ok", ""}), std::invalid_argument);
}

TEST(Vocabulary, CaseInsensitiveCounting) {
  const Vocabulary vocab({".exe", "wget "});
  const auto counts = vocab.count("GET /Payload.EXE and then WGET more.exe");
  EXPECT_EQ(counts[0], 2u);  // .EXE + .exe
  EXPECT_EQ(counts[1], 1u);
}

TEST(Vocabulary, OverlappingMatchesCounted) {
  const Vocabulary vocab({"aa"});
  EXPECT_EQ(vocab.count("aaaa")[0], 3u);
}

TEST(Vocabulary, IndexOfRoundTrip) {
  const Vocabulary vocab = default_vocabulary();
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_EQ(vocab.index_of(vocab.terms()[i]), i);
  }
  EXPECT_THROW((void)vocab.index_of("not-a-term"), std::invalid_argument);
}

TEST(TermMatrix, ShapeAndContent) {
  const Vocabulary vocab({".exe", "ssh-"});
  const std::vector<std::string> payloads = {
      "run me.exe now", "SSH-2.0-OpenSSH_8.9", "hello world"};
  const linalg::Matrix x = term_frequency_matrix(vocab, payloads);
  EXPECT_EQ(x.rows(), 3u);
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_EQ(x(0, 0), 1.0);
  EXPECT_EQ(x(1, 1), 1.0);
  EXPECT_EQ(x(2, 0), 0.0);
  EXPECT_EQ(x(2, 1), 0.0);
}

TEST(PayloadSummarizer, RejectsEmptyBatch) {
  EXPECT_THROW(
      (void)summarize_payloads(default_vocabulary(), {}, {}),
      std::invalid_argument);
}

TEST(PayloadSummarizer, CountsSumToBatch) {
  PayloadGenerator gen(1, 0.1);
  const auto payloads = gen.batch(300);
  const auto summary =
      summarize_payloads(default_vocabulary(), payloads, {});
  std::uint64_t total = 0;
  for (auto c : summary.counts) total += c;
  EXPECT_EQ(total, 300u);
}

TEST(PayloadSummarizer, DetectsInjectedKeyword) {
  // 10% of payloads carry ".exe": the keyword rule must fire from the
  // summary alone, and must stay silent on a clean batch.
  const Vocabulary vocab = default_vocabulary();
  const std::vector<KeywordRule> rules = {
      {".exe", 10, "executable download burst"}};

  PayloadGenerator dirty(2, 0.10);
  const auto dirty_summary = summarize_payloads(vocab, dirty.batch(500), {});
  const auto dirty_alerts = match_keywords(vocab, dirty_summary, rules);
  ASSERT_EQ(dirty_alerts.size(), 1u);
  EXPECT_EQ(dirty_alerts[0].term, ".exe");
  // ~50 marked payloads; the estimate should be in that ballpark.
  EXPECT_GT(dirty_alerts[0].estimated_packets, 20.0);
  EXPECT_LT(dirty_alerts[0].estimated_packets, 120.0);

  PayloadGenerator clean(3, 0.0);
  const auto clean_summary = summarize_payloads(vocab, clean.batch(500), {});
  EXPECT_TRUE(match_keywords(vocab, clean_summary, rules).empty());
}

TEST(PayloadSummarizer, EstimateTracksInjectionRate) {
  const Vocabulary vocab = default_vocabulary();
  const std::vector<KeywordRule> rules = {{".exe", 1, "exe"}};
  double last = -1.0;
  for (double rate : {0.05, 0.15, 0.30}) {
    PayloadGenerator gen(4, rate);
    const auto summary = summarize_payloads(vocab, gen.batch(600), {});
    const auto alerts = match_keywords(vocab, summary, rules);
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_GT(alerts[0].estimated_packets, last);
    last = alerts[0].estimated_packets;
  }
}

TEST(PayloadGenerator, Deterministic) {
  PayloadGenerator a(5, 0.2), b(5, 0.2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(PayloadGenerator, MarkerFractionApproximate) {
  PayloadGenerator gen(6, 0.25);
  std::size_t marked = 0;
  const auto payloads = gen.batch(2000);
  for (const auto& p : payloads) {
    if (p.find(".exe") != std::string::npos) ++marked;
  }
  EXPECT_NEAR(static_cast<double>(marked) / 2000.0, 0.25, 0.04);
}

}  // namespace
}  // namespace jaal::payload
