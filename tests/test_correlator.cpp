#include "inference/correlator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::inference {
namespace {

Alert alert(std::uint32_t sid) {
  Alert a;
  a.sid = sid;
  a.msg = "test";
  return a;
}

TEST(Correlator, ValidatesConfig) {
  EXPECT_THROW(AlertCorrelator({4, 0}), std::invalid_argument);
  EXPECT_THROW(AlertCorrelator({4, 5}), std::invalid_argument);
  EXPECT_NO_THROW(AlertCorrelator({4, 4}));
}

TEST(Correlator, SingleFiringSuppressedUntilRepeat) {
  AlertCorrelator corr({4, 2});
  EXPECT_TRUE(corr.observe({alert(1)}).empty());     // 1 of 2
  EXPECT_EQ(corr.observe({alert(1)}).size(), 1u);    // 2 of 2
}

TEST(Correlator, RequiredOneIsPassThrough) {
  AlertCorrelator corr({4, 1});
  EXPECT_EQ(corr.observe({alert(9)}).size(), 1u);
}

TEST(Correlator, SporadicFiringsOutsideWindowDoNotAccumulate) {
  AlertCorrelator corr({2, 2});  // needs 2 consecutive-ish epochs
  EXPECT_TRUE(corr.observe({alert(1)}).empty());
  EXPECT_TRUE(corr.observe({}).empty());          // gap: history slides
  EXPECT_TRUE(corr.observe({alert(1)}).empty());  // old firing expired
  EXPECT_EQ(corr.observe({alert(1)}).size(), 1u);
}

TEST(Correlator, IndependentSids) {
  AlertCorrelator corr({4, 2});
  EXPECT_TRUE(corr.observe({alert(1), alert(2)}).empty());
  const auto confirmed = corr.observe({alert(1)});
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].sid, 1u);  // sid 2 only fired once
}

TEST(Correlator, SustainedAttackStaysConfirmed) {
  AlertCorrelator corr({4, 3});
  int confirmed_epochs = 0;
  for (int e = 0; e < 10; ++e) {
    confirmed_epochs += corr.observe({alert(5)}).empty() ? 0 : 1;
  }
  EXPECT_EQ(confirmed_epochs, 8);  // from epoch 3 onward
  EXPECT_EQ(corr.epochs(), 10u);
}

TEST(Correlator, ResetClearsHistory) {
  AlertCorrelator corr({4, 2});
  (void)corr.observe({alert(1)});
  corr.reset();
  EXPECT_EQ(corr.epochs(), 0u);
  EXPECT_TRUE(corr.observe({alert(1)}).empty());
}

TEST(Correlator, LatestAlertInstanceReturned) {
  AlertCorrelator corr({4, 2});
  (void)corr.observe({alert(1)});
  Alert second = alert(1);
  second.matched_packets = 777;
  const auto confirmed = corr.observe({second});
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].matched_packets, 777u);
}

}  // namespace
}  // namespace jaal::inference
