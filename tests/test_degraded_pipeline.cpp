// Degraded-mode pipeline contract: an epoch with monitors crashed or
// summaries lost still produces a well-formed partial aggregate with scaled
// confidence and matching telemetry counters, and a seeded fault scenario is
// byte-identical across runs and across threads=1 vs threads=2.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "attack/generators.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/mix.hpp"

namespace jaal::core {
namespace {

struct FaultedRun {
  std::vector<EpochResult> epochs;
  std::string alert_log;  ///< Every alert, serialized field by field.
  std::string epoch_log;  ///< Per-epoch degraded-mode accounting.
  std::string jsonl;      ///< Deterministic telemetry export.
  telemetry::MetricsSnapshot snapshot;
  faults::TransportStats transport;
};

// The telemetry-pipeline operating point (Trace-1 background + DDoS from
// t=1 s, 2 monitors, 1 s epochs) with a fault scenario layered on.
FaultedRun run_faulted(std::size_t threads,
                       const faults::FaultScenario& scenario,
                       faults::LatePolicy late_policy,
                       double duration) {
  telemetry::Telemetry tel;

  trace::TraceProfile profile = trace::trace1_profile();
  profile.packets_per_second = 2000.0;
  trace::BackgroundTraffic background(profile, 7);
  attack::AttackConfig atk;
  atk.victim_ip = evaluation_victim_ip();
  atk.packets_per_second = 5000.0;
  atk.start_time = 1.0;
  atk.seed = 11;
  attack::DistributedSynFlood flood(atk);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  JaalConfig cfg;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 400;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  cfg.monitor_count = 2;
  cfg.epoch_seconds = 1.0;
  cfg.threads = threads;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.telemetry = &tel;
  cfg.faults = scenario;
  cfg.aggregation.late_policy = late_policy;
  JaalController controller(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              evaluation_rule_vars()));

  FaultedRun out;
  out.epochs = controller.run(mix, duration);

  std::ostringstream alerts, epochs;
  alerts.precision(17);
  epochs.precision(17);
  for (std::size_t i = 0; i < out.epochs.size(); ++i) {
    const EpochResult& e = out.epochs[i];
    epochs << "epoch=" << i << " reporting=" << e.monitors_reporting
           << " crashed=" << e.monitors_crashed
           << " dropped=" << e.summaries_dropped
           << " late=" << e.summaries_late
           << " rolled_in=" << e.summaries_rolled_in
           << " lost=" << e.packets_lost
           << " fraction=" << e.report_fraction << "\n";
    for (const inference::Alert& a : e.alerts) {
      alerts << i << " sid=" << a.sid << " matched=" << a.matched_packets
             << " feedback=" << a.via_feedback
             << " distributed=" << a.distributed
             << " confidence=" << a.confidence << "\n";
    }
  }
  out.alert_log = alerts.str();
  out.epoch_log = epochs.str();
  out.snapshot = tel.metrics.snapshot();
  out.jsonl = telemetry::to_jsonl(out.snapshot, tel.tracer.records(),
                                  {.include_timings = false});
  out.transport = controller.fault_stats();
  return out;
}

std::uint64_t counter(const telemetry::MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& e : snapshot.entries) {
    if (e.name == name) return e.counter;
  }
  return 0;
}

// One of two monitors crashes for epoch 1: that epoch must still produce a
// well-formed aggregate from the surviving monitor, report half confidence,
// and count the ingress the crashed monitor never observed.
TEST(DegradedPipeline, CrashedMonitorYieldsPartialAggregate) {
  faults::FaultScenario scenario;
  scenario.crashes.push_back({1, 1, 2});
  const FaultedRun run =
      run_faulted(1, scenario, faults::LatePolicy::kDiscard, 3.0);
  ASSERT_EQ(run.epochs.size(), 3u);

  const EpochResult& degraded = run.epochs[1];
  EXPECT_EQ(degraded.monitors_crashed, 1u);
  EXPECT_EQ(degraded.monitors_reporting, 1u);
  EXPECT_DOUBLE_EQ(degraded.report_fraction, 0.5);
  EXPECT_TRUE(degraded.degraded());
  EXPECT_GT(degraded.packets_lost, 0u);
  // The partial epoch still detects the flood (the surviving monitor sees
  // its share and the engine scales tau_c down by the report fraction).
  EXPECT_FALSE(degraded.alerts.empty());

  // Epochs outside the crash window are full.
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(run.epochs[i].monitors_crashed, 0u) << i;
    EXPECT_DOUBLE_EQ(run.epochs[i].report_fraction, 1.0) << i;
    EXPECT_FALSE(run.epochs[i].degraded()) << i;
  }

  // Every alert carries its epoch's report fraction as confidence.
  for (const EpochResult& e : run.epochs) {
    for (const inference::Alert& a : e.alerts) {
      EXPECT_DOUBLE_EQ(a.confidence, e.report_fraction);
    }
  }
  EXPECT_EQ(run.transport.crashed_monitor_epochs, 1u);
}

#ifndef JAAL_TELEMETRY_DISABLED

TEST(DegradedPipeline, TelemetryCountersMatchEpochAccounting) {
  faults::FaultScenario scenario;
  scenario.seed = 21;
  scenario.drop_rate = 0.5;
  scenario.crashes.push_back({0, 2, 3});
  const FaultedRun run =
      run_faulted(1, scenario, faults::LatePolicy::kDiscard, 4.0);

  std::uint64_t dropped = 0, crashed = 0, lost = 0, degraded = 0;
  for (const EpochResult& e : run.epochs) {
    dropped += e.summaries_dropped;
    crashed += e.monitors_crashed;
    lost += e.packets_lost;
    degraded += e.degraded() ? 1 : 0;
  }
  EXPECT_GT(dropped, 0u);  // drop_rate 0.5 over ~8 ships
  EXPECT_EQ(crashed, 1u);
  EXPECT_GT(lost, 0u);
  EXPECT_EQ(counter(run.snapshot, "jaal_faults_summaries_dropped_total"),
            dropped);
  EXPECT_EQ(counter(run.snapshot, "jaal_faults_crashed_monitor_epochs_total"),
            crashed);
  EXPECT_EQ(counter(run.snapshot, "jaal_faults_packets_lost_total"), lost);
  EXPECT_EQ(counter(run.snapshot, "jaal_faults_degraded_epochs_total"),
            degraded);
  EXPECT_EQ(run.transport.summaries_dropped, dropped);
}

#endif  // JAAL_TELEMETRY_DISABLED

// The ISSUE acceptance scenario: 5% summary loss plus one monitor crashing
// at epoch 3.  Alerts, degraded-mode counters, and the full JSONL telemetry
// trace must be byte-identical across runs and across threads=1 vs 2.
TEST(DegradedPipeline, SeededScenarioIsByteIdenticalAcrossRunsAndThreads) {
  faults::FaultScenario scenario;
  scenario.seed = 5;
  scenario.drop_rate = 0.05;
  scenario.crashes.push_back({1, 3, 4});
  const FaultedRun a =
      run_faulted(1, scenario, faults::LatePolicy::kDiscard, 5.0);
  const FaultedRun b =
      run_faulted(1, scenario, faults::LatePolicy::kDiscard, 5.0);
  const FaultedRun pooled =
      run_faulted(2, scenario, faults::LatePolicy::kDiscard, 5.0);

  ASSERT_FALSE(a.epoch_log.empty());
  EXPECT_FALSE(a.alert_log.empty());  // the flood must still be detected
  EXPECT_EQ(a.epoch_log, b.epoch_log);
  EXPECT_EQ(a.alert_log, b.alert_log);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.epoch_log, pooled.epoch_log);
  EXPECT_EQ(a.alert_log, pooled.alert_log);
  EXPECT_EQ(a.jsonl, pooled.jsonl);
  // The crash epoch really degraded (the scenario is not a no-op).
  EXPECT_EQ(a.epochs.at(3).monitors_crashed, 1u);
  EXPECT_LT(a.epochs.at(3).report_fraction, 1.0);
}

// A link too slow for the deadline makes every summary late.  Under
// kRollForward the late summaries are carried into the next epoch's
// aggregate; under kDiscard they are counted and dropped on the floor.
TEST(DegradedPipeline, RollForwardCarriesLateSummariesIntoNextEpoch) {
  faults::FaultScenario scenario;
  scenario.use_link_model = true;
  scenario.link.rate_bytes_per_s = 10.0;  // KB summaries take >> 1 s epoch
  scenario.link.queue_limit_bytes = 1 << 30;
  const FaultedRun rolled =
      run_faulted(1, scenario, faults::LatePolicy::kRollForward, 3.0);
  ASSERT_EQ(rolled.epochs.size(), 3u);
  EXPECT_GT(rolled.epochs[0].summaries_late, 0u);
  EXPECT_GT(rolled.epochs[1].summaries_rolled_in, 0u);

  const FaultedRun discarded =
      run_faulted(1, scenario, faults::LatePolicy::kDiscard, 3.0);
  EXPECT_GT(discarded.epochs[0].summaries_late, 0u);
  for (const EpochResult& e : discarded.epochs) {
    EXPECT_EQ(e.summaries_rolled_in, 0u);
  }
}

// ---- Engine-level degraded-mode semantics -------------------------------

std::vector<rules::Rule> flood_ruleset() {
  return rules::parse_rules(
      "alert tcp any any -> 203.0.10.5 any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)",
      evaluation_rule_vars());
}

inference::AggregatedSummary aggregate_at_distance(double dist,
                                                   std::uint64_t count) {
  inference::AggregatedSummary agg;
  agg.centroids = linalg::Matrix(1, packet::kFieldCount);
  auto row = agg.centroids.row(0);
  row[packet::index(packet::FieldIndex::kIpDstAddr)] =
      packet::normalize_field(packet::FieldIndex::kIpDstAddr,
                              packet::make_ip(203, 0, 10, 5));
  row[packet::index(packet::FieldIndex::kTcpFlags)] = 2.0 / 63.0 + 2.0 * dist;
  agg.counts = {count};
  agg.origin = {0};
  agg.local_index = {0};
  return agg;
}

TEST(DegradedPipeline, EngineScalesCountThresholdByReportFraction) {
  inference::EngineConfig cfg;
  cfg.default_thresholds = {0.05, 0.15};
  inference::InferenceEngine engine(flood_ruleset(), cfg);
  // 60 matched packets against tau_c = 100: a full epoch stays silent.
  const auto agg = aggregate_at_distance(0.0, 60);
  EXPECT_TRUE(engine.infer(agg, nullptr).empty());
  // Half the monitors reported, so half the attack mass is visible: the
  // scaled threshold (50) now trips, and the alert carries the fraction.
  engine.set_report_fraction(0.5);
  const auto alerts = engine.infer(agg, nullptr);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_DOUBLE_EQ(alerts[0].confidence, 0.5);
  // Restoring 1.0 restores the exact full-epoch behavior.
  engine.set_report_fraction(1.0);
  EXPECT_TRUE(engine.infer(agg, nullptr).empty());
}

TEST(DegradedPipeline, FailedRetrievalFallsBackToSummaryOnlyInference) {
  inference::EngineConfig cfg;
  cfg.default_thresholds = {0.001, 0.2};  // strict misses, loose hits
  inference::InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.05, 500);
  // Retrieval fails outright (nullopt, retries exhausted upstream): the
  // engine must fall back to the loose-threshold decision — alert — rather
  // than treating the failure as exonerating evidence.
  std::size_t fetches = 0;
  const auto alerts = engine.infer(
      agg, [&](summarize::MonitorId, const std::vector<std::size_t>&)
               -> std::optional<std::vector<packet::PacketRecord>> {
        ++fetches;
        return std::nullopt;
      });
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_FALSE(alerts[0].via_feedback);
  EXPECT_EQ(fetches, 1u);
  EXPECT_EQ(engine.stats().feedback_requests, 1u);
  EXPECT_EQ(engine.stats().feedback_fallbacks, 1u);
  EXPECT_EQ(engine.stats().raw_packets_fetched, 0u);
}

}  // namespace
}  // namespace jaal::core
