// Critical-path profiler and Chrome trace export.
//
// The two contracts pinned here:
//   1. Telescoping: every span's exclusive time is its inclusive time minus
//      its children's inclusive, so the tree's exclusive times sum exactly
//      (up to float rounding) to the root's inclusive time — in both
//      duration modes, on synthetic trees and on real controller epochs.
//   2. Determinism: the deterministic-mode Chrome trace, span JSONL and
//      per-epoch critical-path digests are byte-identical across runs,
//      thread counts {1, 2} and shard counts {1, 2, 4}.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/export.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "trace/background.hpp"

namespace jaal::telemetry {
namespace {

/// A hand-built wall-clock tree with known durations:
///   root (100) -> a (40) -> a1 (10)
///             -> b (30)
/// Exclusives: root 30, a 30, a1 10, b 30; sum = 100 = root inclusive.
std::vector<SpanRecord> synthetic_tree() {
  Tracer tracer;
  {
    Span root = tracer.span("epoch", {}, 9);
    root.set_duration_ms(100.0);
    {
      Span a = tracer.span("aggregate", root.context(), 1);
      a.set_duration_ms(40.0);
      Span a1 = tracer.span("svd", a.context(), 1);
      a1.set_duration_ms(10.0);
    }
    Span b = tracer.span("infer", root.context(), 2);
    b.set_duration_ms(30.0);
  }
  return tracer.records();
}

TEST(Profile, ExclusiveTimesTelescopeToRootInclusive) {
  const CriticalPath cp = CriticalPath::build(synthetic_tree(), 9);
  EXPECT_DOUBLE_EQ(cp.root_inclusive_ms, 100.0);
  EXPECT_NEAR(cp.total_exclusive_ms, cp.root_inclusive_ms, 1e-9);
  EXPECT_EQ(cp.span_count, 4u);
  EXPECT_EQ(cp.orphans, 0u);
  EXPECT_EQ(cp.duplicates, 0u);
  // Stage rollup is ranked by exclusive time; three stages tie at 30.
  ASSERT_FALSE(cp.stages.empty());
  double sum = 0.0;
  for (const StageTime& st : cp.stages) sum += st.exclusive_ms;
  EXPECT_NEAR(sum, cp.root_inclusive_ms, 1e-9);
  // Dominant stage is the top-ranked non-root stage.
  EXPECT_NE(cp.dominant_stage, "");
  EXPECT_NE(cp.dominant_stage, "epoch");
  // Longest path walks the max-inclusive child: epoch -> aggregate -> svd.
  ASSERT_EQ(cp.path.size(), 3u);
  EXPECT_EQ(cp.path[0].name, "epoch");
  EXPECT_EQ(cp.path[1].name, "aggregate");
  EXPECT_EQ(cp.path[2].name, "svd");
}

TEST(Profile, DeterministicModeUsesUnitWeights) {
  CriticalPathOptions opts;
  opts.mode = DurationMode::kDeterministic;
  const CriticalPath cp = CriticalPath::build(synthetic_tree(), 9, opts);
  // Root inclusive = subtree size; every span's exclusive = 1.
  EXPECT_DOUBLE_EQ(cp.root_inclusive_ms, 4.0);
  EXPECT_NEAR(cp.total_exclusive_ms, cp.root_inclusive_ms, 1e-12);
  EXPECT_TRUE(cp.stragglers.empty());  // unit weights cannot diverge
}

TEST(Profile, ParallelChildrenGiveNegativeExclusiveNotClamped) {
  // Two children of 80 ms each under a 100 ms root: child work overlapped
  // on a pool, so the root's self time is 100 - 160 = -60 (parallelism
  // credit).  The telescoping identity must survive.
  Tracer tracer;
  {
    Span root = tracer.span("epoch", {}, 1);
    root.set_duration_ms(100.0);
    {
      Span a = tracer.span("summarize", root.context(), 0);
      a.set_duration_ms(80.0);
    }
    Span b = tracer.span("summarize", root.context(), 1);
    b.set_duration_ms(80.0);
  }
  const CriticalPath cp = CriticalPath::build(tracer.records(), 1);
  EXPECT_NEAR(cp.total_exclusive_ms, 100.0, 1e-9);
  const StageTime* root_stage = nullptr;
  for (const StageTime& st : cp.stages) {
    if (st.name == "epoch") root_stage = &st;
  }
  ASSERT_NE(root_stage, nullptr);
  EXPECT_DOUBLE_EQ(root_stage->exclusive_ms, -60.0);
}

TEST(Profile, OrphansAndDuplicatesAreCountedAndExcluded) {
  std::vector<SpanRecord> spans = synthetic_tree();
  // An orphan: parent id that no record carries.
  SpanRecord orphan;
  orphan.name = "ghost";
  orphan.trace_id = 9;
  orphan.span_id = 12345;
  orphan.parent_id = 999999;
  orphan.duration_ms = 5.0;
  spans.push_back(orphan);
  // A duplicate of an existing span id.
  SpanRecord dup = spans[0];
  spans.push_back(dup);
  const CriticalPath cp = CriticalPath::build(spans, 9);
  EXPECT_EQ(cp.orphans, 1u);
  EXPECT_EQ(cp.duplicates, 1u);
  EXPECT_EQ(cp.span_count, 4u);  // the tree itself is unchanged
  EXPECT_NEAR(cp.total_exclusive_ms, cp.root_inclusive_ms, 1e-9);
}

TEST(Profile, AllOrphanTraceAttributesNothing) {
  std::vector<SpanRecord> spans;
  SpanRecord s;
  s.name = "lost";
  s.trace_id = 3;
  s.span_id = 7;
  s.parent_id = 99;  // never recorded
  spans.push_back(s);
  const CriticalPath cp = CriticalPath::build(spans, 3);
  EXPECT_EQ(cp.span_count, 0u);
  EXPECT_EQ(cp.orphans, 1u);
  EXPECT_TRUE(cp.path.empty());
}

TEST(Profile, StragglerDetection) {
  // Five per-monitor flushes, one 10x slower than its siblings.
  Tracer tracer;
  {
    Span root = tracer.span("epoch", {}, 2);
    root.set_duration_ms(120.0);
    for (std::uint64_t m = 0; m < 5; ++m) {
      Span flush = tracer.span("summarize", root.context(), m);
      flush.set_duration_ms(m == 3 ? 100.0 : 10.0);
    }
  }
  const CriticalPath cp = CriticalPath::build(tracer.records(), 2);
  EXPECT_EQ(cp.sibling_groups, 1u);
  ASSERT_EQ(cp.stragglers.size(), 1u);
  EXPECT_EQ(cp.stragglers[0].name, "summarize");
  EXPECT_EQ(cp.stragglers[0].key, 3u);
  EXPECT_DOUBLE_EQ(cp.stragglers[0].max_ms, 100.0);
  EXPECT_DOUBLE_EQ(cp.stragglers[0].median_ms, 10.0);
  EXPECT_EQ(cp.stragglers[0].group_size, 5u);
  // A balanced group is not a straggler.
  Tracer even;
  {
    Span root = even.span("epoch", {}, 2);
    root.set_duration_ms(50.0);
    for (std::uint64_t m = 0; m < 4; ++m) {
      Span flush = even.span("summarize", root.context(), m);
      flush.set_duration_ms(10.0 + static_cast<double>(m));
    }
  }
  EXPECT_TRUE(CriticalPath::build(even.records(), 2).stragglers.empty());
}

TEST(Profile, ReportRollsUpAcrossEpochs) {
  ProfileReport report;
  report.add(CriticalPath::build(synthetic_tree(), 9));
  report.add(CriticalPath::build(synthetic_tree(), 9));
  EXPECT_EQ(report.epochs(), 2u);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("2 epochs"), std::string::npos);
  EXPECT_NE(text.find("aggregate"), std::string::npos);
  const std::string jsonl = report.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"profile_stage\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"profile_summary\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"epochs\":2"), std::string::npos);
}

TEST(Profile, StageIdsRoundTrip) {
  EXPECT_EQ(profile_stage_id("observe"), 0);       // kSpan stage ids
  EXPECT_EQ(profile_stage_id("postprocess"), 5);
  EXPECT_EQ(profile_stage_name(profile_stage_id("shard_aggregate")),
            "shard_aggregate");
  EXPECT_EQ(profile_stage_name(profile_stage_id("store_commit")),
            "store_commit");
  EXPECT_EQ(profile_stage_id("not_a_stage"), 255);
  EXPECT_EQ(profile_stage_name(255), "other");
  EXPECT_TRUE(is_tier_shape_span("shard_match"));
  EXPECT_FALSE(is_tier_shape_span("summarize"));
}

// ------------------------------------------------------------ chrome trace

TEST(ChromeTrace, WallModeEmitsCompleteEvents) {
  const std::string json = export_chrome_trace(synthetic_tree());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"aggregate\""), std::string::npos);
  // Every span of the tree is present (4 events).
  std::size_t events = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++events;
  }
  EXPECT_EQ(events, 4u);
}

TEST(ChromeTrace, DeterministicModeDropsOrphansDuplicatesAndTierShape) {
  std::vector<SpanRecord> spans = synthetic_tree();
  SpanRecord shard;
  shard.name = "shard_aggregate";
  shard.trace_id = 9;
  shard.span_id = 555;
  shard.parent_id = spans[0].span_id;
  spans.push_back(shard);
  SpanRecord orphan;
  orphan.name = "ghost";
  orphan.trace_id = 9;
  orphan.span_id = 556;
  orphan.parent_id = 999999;
  spans.push_back(orphan);
  ChromeTraceOptions det;
  det.mode = DurationMode::kDeterministic;
  const std::string json = export_chrome_trace(spans, det);
  EXPECT_EQ(json.find("shard_aggregate"), std::string::npos);
  EXPECT_EQ(json.find("ghost"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"svd\""), std::string::npos);
}

// ----------------------------------------- controller-level determinism

core::JaalConfig profile_config(std::size_t shards, std::size_t threads,
                                telemetry::Telemetry* tel) {
  core::JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.monitor_count = 5;
  cfg.epoch_seconds = 0.04;
  cfg.threads = threads;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.sharding.shards = shards;
  cfg.telemetry = tel;
  return cfg;
}

struct DetOutputs {
  std::string chrome;        ///< Deterministic Chrome trace.
  std::string span_jsonl;    ///< Deterministic span JSONL.
  std::string digests;       ///< Per-epoch deterministic critical paths.
  std::size_t epochs = 0;
  double wall_telescope_err = 0.0;  ///< Max |sum(excl) - root| over epochs.
};

DetOutputs run_profiled(std::size_t shards, std::size_t threads) {
  telemetry::Telemetry tel;
  core::JaalConfig cfg = profile_config(shards, threads, &tel);
  core::JaalController controller(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              core::evaluation_rule_vars()));
  trace::BackgroundTraffic bg(trace::trace1_profile(), 11);
  const auto epochs = controller.run(bg, 0.12);

  DetOutputs out;
  out.epochs = epochs.size();
  const std::vector<SpanRecord> spans = tel.tracer.records();
  ChromeTraceOptions copts;
  copts.mode = DurationMode::kDeterministic;
  out.chrome = export_chrome_trace(spans, copts);
  out.span_jsonl = to_jsonl({}, spans, {.include_timings = false});
  CriticalPathOptions det;
  det.mode = DurationMode::kDeterministic;
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    out.digests += CriticalPath::build(spans, e, det).to_text();
  }
  for (const core::EpochResult& epoch : epochs) {
    if (!epoch.profile) continue;
    out.wall_telescope_err = std::max(
        out.wall_telescope_err,
        std::abs(epoch.profile->total_exclusive_ms -
                 epoch.profile->root_inclusive_ms));
  }
  return out;
}

TEST(ChromeTrace, DeterministicExportsByteIdenticalAcrossThreadsAndShards) {
  const DetOutputs base = run_profiled(1, 1);
  ASSERT_GT(base.epochs, 0u);
  ASSERT_FALSE(base.chrome.empty());
  ASSERT_FALSE(base.digests.empty());
  // Repeat run: byte-identical.
  const DetOutputs rerun = run_profiled(1, 1);
  EXPECT_EQ(base.chrome, rerun.chrome);
  EXPECT_EQ(base.span_jsonl, rerun.span_jsonl);
  EXPECT_EQ(base.digests, rerun.digests);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      if (threads == 1 && shards == 1) continue;
      const DetOutputs got = run_profiled(shards, threads);
      EXPECT_EQ(base.chrome, got.chrome)
          << "chrome trace diverged at threads=" << threads
          << " shards=" << shards;
      EXPECT_EQ(base.span_jsonl, got.span_jsonl)
          << "span JSONL diverged at threads=" << threads
          << " shards=" << shards;
      EXPECT_EQ(base.digests, got.digests)
          << "critical-path digest diverged at threads=" << threads
          << " shards=" << shards;
    }
  }
}

TEST(Profile, ControllerEpochsTelescopeInWallMode) {
  const DetOutputs out = run_profiled(2, 2);
  ASSERT_GT(out.epochs, 0u);
  // Float rounding only — the identity itself is exact.
  EXPECT_LT(out.wall_telescope_err, 1e-6);
}

TEST(Profile, ControllerFillsEpochProfile) {
  telemetry::Telemetry tel;
  core::JaalConfig cfg = profile_config(1, 1, &tel);
  core::JaalController controller(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              core::evaluation_rule_vars()));
  trace::BackgroundTraffic bg(trace::trace1_profile(), 11);
  const auto epochs = controller.run(bg, 0.12);
  ASSERT_FALSE(epochs.empty());
  for (const core::EpochResult& epoch : epochs) {
    ASSERT_TRUE(epoch.profile.has_value());
    EXPECT_EQ(epoch.profile->mode, DurationMode::kWall);
    EXPECT_GT(epoch.profile->span_count, 0u);
    ASSERT_FALSE(epoch.profile->path.empty());
    EXPECT_EQ(epoch.profile->path.front().name, "epoch");
  }
  // The jaal_profile_* family is exported and classified wall-clock (so it
  // never reaches deterministic exports or the persisted ops deltas).
  bool saw_epochs_counter = false;
  for (const auto& e : tel.metrics.snapshot().entries) {
    if (e.name == "jaal_profile_epochs_total") {
#ifndef JAAL_TELEMETRY_DISABLED
      EXPECT_EQ(e.counter, epochs.size());
#endif
      saw_epochs_counter = true;
    }
  }
  EXPECT_TRUE(saw_epochs_counter);
  EXPECT_TRUE(is_wall_clock_metric("jaal_profile_epochs_total"));
  EXPECT_TRUE(is_wall_clock_metric("jaal_profile_critical_path_ms"));

  // Profiling off: spans still flow, but no per-epoch analysis.
  telemetry::Telemetry tel2;
  core::JaalConfig off = profile_config(1, 1, &tel2);
  off.observe.profile = false;
  core::JaalController plain(
      off, rules::parse_rules(rules::default_ruleset_text(),
                              core::evaluation_rule_vars()));
  trace::BackgroundTraffic bg2(trace::trace1_profile(), 11);
  for (const core::EpochResult& epoch : plain.run(bg2, 0.12)) {
    EXPECT_FALSE(epoch.profile.has_value());
  }
}

}  // namespace
}  // namespace jaal::telemetry
