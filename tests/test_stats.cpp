#include "linalg/stats.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace jaal::linalg {
namespace {

TEST(Stats, MeanBasics) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, VarianceBasics) {
  const double v[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);  // classic textbook example
  const double single[] = {42.0};
  EXPECT_DOUBLE_EQ(variance(single), 0.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> v(100, 3.14);
  EXPECT_NEAR(variance(v), 0.0, 1e-24);  // float residue only
}

TEST(Stats, WeightedMeanMatchesExpansion) {
  const double values[] = {1.0, 10.0};
  const std::uint64_t weights[] = {3, 1};
  // Expanded: {1,1,1,10} -> mean 3.25
  EXPECT_DOUBLE_EQ(weighted_mean(values, weights), 3.25);
}

TEST(Stats, WeightedVarianceMatchesExpansion) {
  const double values[] = {2.0, 4.0, 9.0};
  const std::uint64_t weights[] = {2, 3, 1};
  // Expanded multiset {2,2,4,4,4,9}.
  const double expanded[] = {2, 2, 4, 4, 4, 9};
  EXPECT_NEAR(weighted_variance(values, weights), variance(expanded), 1e-12);
}

TEST(Stats, WeightedSizeMismatchThrows) {
  const double values[] = {1.0};
  const std::uint64_t weights[] = {1, 2};
  EXPECT_THROW((void)weighted_mean(values, weights), std::invalid_argument);
  EXPECT_THROW((void)weighted_variance(values, weights), std::invalid_argument);
}

TEST(Stats, WeightedVarianceAllZeroWeights) {
  const double values[] = {1.0, 2.0};
  const std::uint64_t weights[] = {0, 0};
  EXPECT_DOUBLE_EQ(weighted_variance(values, weights), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> unit(-5.0, 5.0);
  std::vector<double> values;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = unit(rng);
    values.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), mean(values), 1e-10);
  EXPECT_NEAR(rs.variance(), variance(values), 1e-9);
}

TEST(RunningStats, WeightedAddMatchesRepeatedAdd) {
  RunningStats weighted, repeated;
  weighted.add(3.0, 5);
  weighted.add(7.0, 2);
  for (int i = 0; i < 5; ++i) repeated.add(3.0);
  for (int i = 0; i < 2; ++i) repeated.add(7.0);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
  EXPECT_NEAR(weighted.variance(), repeated.variance(), 1e-12);
}

TEST(RunningStats, ZeroWeightIgnored) {
  RunningStats rs;
  rs.add(5.0, 0);
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, FewerThanTwoSamplesHaveZeroVariance) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(1.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 1.0);  // population variance of {1,3}
}

}  // namespace
}  // namespace jaal::linalg
