#include "rules/question.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace jaal::rules {
namespace {

using packet::FieldIndex;

RuleVars vars() {
  RuleVars v;
  v.home_net = AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
  return v;
}

TEST(Question, TranslationPinsOnlyConstrainedFields) {
  // The paper's example: translating the SSH rule pins the home-net address
  // and port 22, leaving every other entry at -1 (§5.2).
  const Rule rule = parse_rule(
      "alert tcp $EXTERNAL_NET any -> $HOME_NET 22 (msg:\"ssh\"; "
      "detection_filter: track by_src, count 5, seconds 60; sid:19559;)",
      vars());
  const Question q = translate(rule);
  EXPECT_EQ(q.constrained_fields(), 2u);
  EXPECT_NE(q.q[packet::index(FieldIndex::kIpDstAddr)], kWildcard);
  EXPECT_DOUBLE_EQ(q.q[packet::index(FieldIndex::kTcpDstPort)],
                   22.0 / 65535.0);
  // $EXTERNAL_NET is a negation: unconstrainable as a point value.
  EXPECT_EQ(q.q[packet::index(FieldIndex::kIpSrcAddr)], kWildcard);
  EXPECT_EQ(q.tau_c, 5u);
  EXPECT_DOUBLE_EQ(q.window_seconds, 60.0);
}

TEST(Question, FlagsAndWindowNormalized) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any any (msg:\"x\"; flags:S; window:0; sid:1;)",
      vars());
  const Question q = translate(rule);
  EXPECT_DOUBLE_EQ(q.q[packet::index(FieldIndex::kTcpFlags)], 2.0 / 63.0);
  EXPECT_DOUBLE_EQ(q.q[packet::index(FieldIndex::kTcpWindow)], 0.0);
}

TEST(Question, CidrPinsToRangeMidpoint) {
  const Rule rule = parse_rule(
      "alert tcp any any -> 10.0.0.0/8 any (msg:\"x\"; sid:2;)", vars());
  const Question q = translate(rule);
  const double lo = static_cast<double>(packet::make_ip(10, 0, 0, 0));
  const double hi = static_cast<double>(packet::make_ip(10, 255, 255, 255));
  EXPECT_NEAR(q.q[packet::index(FieldIndex::kIpDstAddr)],
              (lo + hi) / 2.0 / 4294967295.0, 1e-12);
}

TEST(Question, DistanceIsNormalizedL1OverConstrainedFields) {
  Question q;
  q.q.fill(kWildcard);
  q.q[0] = 0.5;
  q.q[5] = 1.0;
  std::array<double, packet::kFieldCount> x{};
  x[0] = 0.25;  // |0.5 - 0.25| = 0.25
  x[5] = 0.5;   // |1.0 - 0.5| = 0.5
  x[7] = 99.0;  // irrelevant: wildcard
  EXPECT_DOUBLE_EQ(q.distance(x), (0.25 + 0.5) / 2.0);
}

TEST(Question, FullyWildcardDistanceIsInfinite) {
  Question q;
  q.q.fill(kWildcard);
  std::array<double, packet::kFieldCount> x{};
  EXPECT_TRUE(std::isinf(q.distance(x)));
}

TEST(Question, ExactMatchHasZeroDistance) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any 80 (msg:\"x\"; flags:S; sid:3;)", vars());
  const Question q = translate(rule);
  packet::PacketRecord pkt;
  pkt.tcp.dst_port = 80;
  pkt.tcp.set(packet::TcpFlag::kSyn);
  const auto v = packet::to_normalized_vector(pkt);
  EXPECT_NEAR(q.distance(v), 0.0, 1e-12);
}

TEST(Question, MismatchedPacketHasLargeDistance) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any 80 (msg:\"x\"; flags:S; sid:3;)", vars());
  const Question q = translate(rule);
  packet::PacketRecord pkt;
  pkt.tcp.dst_port = 60000;
  pkt.tcp.set(packet::TcpFlag::kAck);
  const auto v = packet::to_normalized_vector(pkt);
  EXPECT_GT(q.distance(v), 0.1);
}

TEST(Question, PortRangesStayWildcard) {
  // A range or list cannot be pinned to a single point value; the question
  // leaves the port wildcarded and the count/variance machinery carries
  // the rule (raw matching still enforces the range exactly).
  const Rule rule = parse_rule(
      "alert tcp any any -> any [8000:8080,22] (msg:\"x\"; flags:S; sid:6;)",
      vars());
  const Question q = translate(rule);
  EXPECT_EQ(q.q[packet::index(FieldIndex::kTcpDstPort)], kWildcard);
  EXPECT_NE(q.q[packet::index(FieldIndex::kTcpFlags)], kWildcard);
}

TEST(Question, DefaultTauCIsOne) {
  const Rule rule =
      parse_rule("alert tcp any any -> any 80 (msg:\"x\"; sid:4;)", vars());
  EXPECT_EQ(translate(rule).tau_c, 1u);
}

TEST(Question, VarianceCheckCarriedOver) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any any (msg:\"scan\"; flags:S; "
      "jaal_variance: tcp.dst_port, 0.01; sid:5;)",
      vars());
  const Question q = translate(rule);
  ASSERT_TRUE(q.variance.has_value());
  EXPECT_EQ(q.variance->field, FieldIndex::kTcpDstPort);
  EXPECT_DOUBLE_EQ(q.variance->threshold, 0.01);
}

TEST(Question, BatchTranslation) {
  const auto rules = parse_rules(default_ruleset_text(), vars());
  const auto questions = translate(rules);
  ASSERT_EQ(questions.size(), rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(questions[i].sid, rules[i].sid);
    EXPECT_GT(questions[i].constrained_fields(), 0u);
  }
}

}  // namespace
}  // namespace jaal::rules
