#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "trace/background.hpp"

namespace jaal::core {
namespace {

summarize::SummarizerConfig config(std::size_t n = 600, std::size_t min = 300) {
  summarize::SummarizerConfig cfg;
  cfg.batch_size = n;
  cfg.min_batch = min;
  cfg.rank = 12;
  cfg.centroids = 64;
  return cfg;
}

std::vector<packet::PacketRecord> traffic(std::size_t n,
                                          std::uint64_t seed = 1) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), seed);
  return trace::take(gen, n);
}

TEST(Monitor, BuffersAndReportsReadiness) {
  Monitor m(0, config(100, 50));
  EXPECT_FALSE(m.batch_ready());
  for (const auto& pkt : traffic(99)) m.observe(pkt);
  EXPECT_FALSE(m.batch_ready());
  m.observe(traffic(1, 2)[0]);
  EXPECT_TRUE(m.batch_ready());
  EXPECT_EQ(m.packets_observed(), 100u);
}

TEST(Monitor, FlushBelowMinimumReturnsNulloptAndKeepsBuffer) {
  Monitor m(0, config(600, 300));
  for (const auto& pkt : traffic(100)) m.observe(pkt);
  EXPECT_FALSE(m.flush_epoch().has_value());
  EXPECT_EQ(m.buffered(), 100u);  // packets roll into the next epoch
}

TEST(Monitor, FlushSummarizesAndClearsBuffer) {
  Monitor m(3, config());
  for (const auto& pkt : traffic(600)) m.observe(pkt);
  const auto summary = m.flush_epoch();
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(m.buffered(), 0u);
  // Summary is attributed to the right monitor.
  if (const auto* split = std::get_if<summarize::SplitSummary>(&*summary)) {
    EXPECT_EQ(split->monitor, 3u);
  } else {
    EXPECT_EQ(std::get<summarize::CombinedSummary>(*summary).monitor, 3u);
  }
}

TEST(Monitor, RawPacketRetrievalCoversWholeBatch) {
  Monitor m(0, config());
  const auto packets = traffic(600, 5);
  for (const auto& pkt : packets) m.observe(pkt);
  (void)m.flush_epoch();
  // Requesting every centroid must return every packet exactly once.
  std::vector<std::size_t> all_centroids;
  for (std::size_t c = 0; c < 64; ++c) all_centroids.push_back(c);
  const auto raw = m.raw_packets_for(all_centroids);
  EXPECT_EQ(raw.size(), 600u);
}

TEST(Monitor, RawPacketsGroupedByCentroidAreDisjoint) {
  Monitor m(0, config());
  for (const auto& pkt : traffic(600, 6)) m.observe(pkt);
  (void)m.flush_epoch();
  std::size_t total = 0;
  for (std::size_t c = 0; c < 64; ++c) {
    total += m.raw_packets_for({c}).size();
  }
  EXPECT_EQ(total, 600u);
}

TEST(Monitor, UnknownCentroidIgnored) {
  Monitor m(0, config());
  for (const auto& pkt : traffic(600, 7)) m.observe(pkt);
  (void)m.flush_epoch();
  EXPECT_TRUE(m.raw_packets_for({9999}).empty());
}

TEST(Monitor, EpochStoreReplacedOnNextFlush) {
  Monitor m(0, config(300, 100));
  for (const auto& pkt : traffic(300, 8)) m.observe(pkt);
  (void)m.flush_epoch();
  for (const auto& pkt : traffic(300, 9)) m.observe(pkt);
  (void)m.flush_epoch();
  std::vector<std::size_t> all_centroids;
  for (std::size_t c = 0; c < 64; ++c) all_centroids.push_back(c);
  EXPECT_EQ(m.raw_packets_for(all_centroids).size(), 300u);  // only last epoch
}

TEST(Monitor, CommAccounting) {
  Monitor m(0, config());
  for (const auto& pkt : traffic(600, 10)) m.observe(pkt);
  EXPECT_EQ(m.comm().raw_header_bytes, 600u * packet::kHeadersBytes);
  EXPECT_EQ(m.comm().summary_bytes, 0u);
  (void)m.flush_epoch();
  EXPECT_GT(m.comm().summary_bytes, 0u);
  // The whole point: summaries are much smaller than raw headers.
  EXPECT_LT(m.comm().summary_bytes, m.comm().raw_header_bytes / 2);
}

TEST(Monitor, MalformedPacketsAreDroppedAndCounted) {
  Monitor m(0, config(100, 50));
  const auto good = traffic(4, 3);

  packet::PacketRecord bad_version = good[0];
  bad_version.ip.version = 6;
  packet::PacketRecord bad_ihl = good[1];
  bad_ihl.ip.ihl = 4;
  packet::PacketRecord bad_offset = good[2];
  bad_offset.tcp.data_offset = 3;
  packet::PacketRecord short_total = good[3];
  short_total.ip.total_length = 10;  // < the headers it claims to carry

  for (const auto& pkt : good) m.observe(pkt);
  m.observe(bad_version);
  m.observe(bad_ihl);
  m.observe(bad_offset);
  m.observe(short_total);

  EXPECT_EQ(m.buffered(), 4u);  // only the well-formed packets
  EXPECT_EQ(m.packets_observed(), 4u);
  EXPECT_EQ(m.packets_malformed(), 4u);
  EXPECT_EQ(m.packets_oversized(), 0u);
}

TEST(Monitor, OversizedPacketsAreDroppedAndCounted) {
  Monitor m(0, config(100, 50));
  const auto good = traffic(2, 4);
  packet::PacketRecord jumbo = good[0];
  jumbo.ip.total_length = 9001;  // beyond any jumbo frame we forward

  m.observe(good[0]);
  m.observe(jumbo);
  m.observe(good[1]);

  EXPECT_EQ(m.buffered(), 2u);
  EXPECT_EQ(m.packets_oversized(), 1u);
  EXPECT_EQ(m.packets_malformed(), 0u);
}

}  // namespace
}  // namespace jaal::core
