#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace jaal::core {
namespace {

JaalConfig small_config() {
  JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.monitor_count = 3;
  cfg.epoch_seconds = 0.04;  // ~2000 packets per epoch at 50 kpps background
  cfg.engine.default_thresholds = {0.02, 0.02};
  // Deployment headroom: rule counts are nominal; an admin tunes them above
  // the local traffic's drift range (short-flow-heavy windows carry several
  // times the SYN share of bulk-transfer windows).
  cfg.engine.tau_c_scale = 1.8;
  return cfg;
}

std::vector<rules::Rule> ruleset() {
  return rules::parse_rules(rules::default_ruleset_text(),
                            evaluation_rule_vars());
}

TEST(Controller, ValidatesMonitorCount) {
  JaalConfig cfg = small_config();
  cfg.monitor_count = 0;
  EXPECT_THROW(JaalController(cfg, ruleset()), std::invalid_argument);
}

TEST(Controller, FlowHashingIsSticky) {
  JaalController controller(small_config(), ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 1);
  // All packets of one flow must land on one monitor: ingest the same
  // packet twice and check counts moved on exactly one monitor by 2.
  const auto pkt = gen.next();
  controller.ingest(pkt);
  controller.ingest(pkt);
  std::size_t with_two = 0, with_zero = 0;
  for (const auto& m : controller.monitors()) {
    if (m.packets_observed() == 2) ++with_two;
    if (m.packets_observed() == 0) ++with_zero;
  }
  EXPECT_EQ(with_two, 1u);
  EXPECT_EQ(with_zero, 2u);
}

TEST(Controller, RunProducesEpochs) {
  JaalController controller(small_config(), ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 2);
  const auto epochs = controller.run(gen, 0.2);
  EXPECT_GE(epochs.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& e : epochs) total += e.packets;
  EXPECT_GT(total, 5000u);  // ~10k at 50 kpps over 0.2 s
}

TEST(Controller, BenignTrafficMostlyQuiet) {
  // Jaal is a threshold system with a documented ~9% FPR operating point
  // (§8.1); benign traffic may occasionally cross a count threshold, but
  // the vast majority of epochs must stay silent.
  JaalController controller(small_config(), ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 3);
  const auto epochs = controller.run(gen, 0.3);
  std::size_t alerting = 0;
  for (const auto& epoch : epochs) alerting += epoch.alerts.empty() ? 0 : 1;
  EXPECT_LE(alerting, epochs.size() / 4)
      << alerting << " of " << epochs.size() << " epochs raised alerts";
}

TEST(Controller, CommStatsAggregateAcrossMonitors) {
  JaalController controller(small_config(), ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 4);
  (void)controller.run(gen, 0.1);
  const CommStats comm = controller.comm();
  EXPECT_GT(comm.raw_header_bytes, 0u);
  EXPECT_GT(comm.summary_bytes, 0u);
  EXPECT_LT(comm.overhead_ratio(), 1.0);
}

TEST(Controller, BatchTriggeredEpochsCloseOnFullBatches) {
  // §5.1's second fetch mode: an epoch closes when some monitor reaches a
  // full batch of n packets, not on a timer.
  JaalConfig cfg = small_config();
  cfg.trigger = EpochTrigger::kBatchTriggered;
  cfg.summarizer.batch_size = 300;
  cfg.summarizer.min_batch = 100;
  JaalController controller(cfg, ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 8);
  const auto epochs = controller.run(gen, 0.1);  // ~5000 packets
  // With 3 monitors at ~1/3 share each, a batch of 300 fills roughly every
  // 900 packets: expect several epochs, far more than the periodic mode's
  // 0.1s / 0.04s = 2-3.
  EXPECT_GE(epochs.size(), 4u);
  // No monitor may be left sitting on a full batch after any epoch close.
  for (const auto& m : controller.monitors()) {
    EXPECT_LT(m.buffered(), cfg.summarizer.batch_size);
  }
}

TEST(Controller, CloseEpochWithNoTrafficIsHarmless) {
  JaalController controller(small_config(), ruleset());
  const EpochResult r = controller.close_epoch(1.0);
  EXPECT_EQ(r.monitors_reporting, 0u);
  EXPECT_TRUE(r.alerts.empty());
}

}  // namespace
}  // namespace jaal::core
