#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace jaal::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = unit(rng);
  return m;
}

/// Checks that the columns of m are orthonormal (up to numerically-zero
/// columns, which carry sigma = 0).
void expect_orthonormal_columns(const Matrix& m,
                                std::span<const double> sigma,
                                double tol = 1e-9) {
  for (std::size_t i = 0; i < m.cols(); ++i) {
    if (sigma[i] == 0.0) continue;
    for (std::size_t j = i; j < m.cols(); ++j) {
      if (sigma[j] == 0.0) continue;
      double dot = 0.0;
      for (std::size_t r = 0; r < m.rows(); ++r) dot += m(r, i) * m(r, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, tol) << "columns " << i << "," << j;
    }
  }
}

TEST(Svd, EmptyMatrixThrows) {
  EXPECT_THROW((void)svd(Matrix{}), std::invalid_argument);
}

TEST(Svd, DiagonalMatrixRecoversSingularValues) {
  const double diag[] = {5.0, 3.0, 1.0};
  const SvdResult r = svd(Matrix::diagonal(diag));
  ASSERT_EQ(r.sigma.size(), 3u);
  EXPECT_NEAR(r.sigma[0], 5.0, 1e-12);
  EXPECT_NEAR(r.sigma[1], 3.0, 1e-12);
  EXPECT_NEAR(r.sigma[2], 1.0, 1e-12);
}

TEST(Svd, SingularValuesSortedDescending) {
  const SvdResult r = svd(random_matrix(40, 10, 1));
  for (std::size_t i = 1; i < r.sigma.size(); ++i) {
    EXPECT_GE(r.sigma[i - 1], r.sigma[i]);
  }
}

TEST(Svd, ReconstructionMatchesOriginalTall) {
  const Matrix a = random_matrix(30, 8, 2);
  const SvdResult r = svd(a);
  EXPECT_LT(a.max_abs_diff(r.reconstruct()), 1e-9);
}

TEST(Svd, ReconstructionMatchesOriginalWide) {
  const Matrix a = random_matrix(6, 20, 3);
  const SvdResult r = svd(a);
  ASSERT_EQ(r.u.rows(), 6u);
  ASSERT_EQ(r.v.rows(), 20u);
  EXPECT_LT(a.max_abs_diff(r.reconstruct()), 1e-9);
}

TEST(Svd, FactorsAreOrthonormal) {
  const Matrix a = random_matrix(25, 7, 4);
  const SvdResult r = svd(a);
  expect_orthonormal_columns(r.u, r.sigma);
  expect_orthonormal_columns(r.v, r.sigma);
}

TEST(Svd, RankDeficientMatrixHasZeroSingularValues) {
  // Rank-1 matrix: outer product.
  Matrix a(10, 5);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      a(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 1);
    }
  }
  const SvdResult r = svd(a);
  EXPECT_GT(r.sigma[0], 0.0);
  for (std::size_t i = 1; i < r.sigma.size(); ++i) {
    EXPECT_NEAR(r.sigma[i], 0.0, 1e-9);
  }
}

TEST(Svd, FrobeniusNormPreserved) {
  // ||A||_F^2 == sum sigma_i^2.
  const Matrix a = random_matrix(15, 6, 5);
  const SvdResult r = svd(a);
  double sum_sq = 0.0;
  for (double s : r.sigma) sum_sq += s * s;
  EXPECT_NEAR(std::sqrt(sum_sq), a.frobenius_norm(), 1e-9);
}

TEST(Svd, TruncatedIsBestLowRankApproximation) {
  // Eckart–Young: rank-r SVD reconstruction beats any other rank-r guess we
  // can easily produce; here we at least verify error decreases with r and
  // equals the tail singular values' energy.
  const Matrix a = random_matrix(20, 8, 6);
  const SvdResult full = svd(a);
  double prev_err = 1e300;
  for (std::size_t r = 1; r <= 8; ++r) {
    const Matrix approx = full.reconstruct_rank(r);
    const double err = (a - approx).frobenius_norm();
    EXPECT_LE(err, prev_err + 1e-12);
    prev_err = err;
    double tail = 0.0;
    for (std::size_t i = r; i < full.sigma.size(); ++i) {
      tail += full.sigma[i] * full.sigma[i];
    }
    EXPECT_NEAR(err, std::sqrt(tail), 1e-9) << "rank " << r;
  }
}

TEST(Svd, TruncatedSvdShapes) {
  const Matrix a = random_matrix(50, 18, 7);
  const SvdResult r = truncated_svd(a, 12);
  EXPECT_EQ(r.u.rows(), 50u);
  EXPECT_EQ(r.u.cols(), 12u);
  EXPECT_EQ(r.sigma.size(), 12u);
  EXPECT_EQ(r.v.rows(), 18u);
  EXPECT_EQ(r.v.cols(), 12u);
}

TEST(Svd, TruncatedSvdValidatesRank) {
  const Matrix a = random_matrix(10, 4, 8);
  EXPECT_THROW((void)truncated_svd(a, 0), std::invalid_argument);
  EXPECT_THROW((void)truncated_svd(a, 5), std::invalid_argument);
}

TEST(Svd, RankForEnergy) {
  const double diag[] = {10.0, 1.0, 0.1};  // energies 100, 1, 0.01
  const SvdResult r = svd(Matrix::diagonal(diag));
  EXPECT_EQ(r.rank_for_energy(0.90), 1u);
  EXPECT_EQ(r.rank_for_energy(0.999), 2u);
  EXPECT_EQ(r.rank_for_energy(1.0), 3u);
}

TEST(Svd, RankForEnergyZeroMatrix) {
  const SvdResult r = svd(Matrix(4, 4) + Matrix(4, 4));
  EXPECT_EQ(r.rank_for_energy(0.9), 0u);
}

TEST(RandomizedSvd, MatchesExactOnDecayingSpectrum) {
  // Packet-matrix-like input: strong leading directions, weak tail.
  std::mt19937_64 rng(11);
  Matrix a = random_matrix(200, 18, 12);
  // Impose decay by scaling columns.
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const double scale = 1.0 / static_cast<double>(1 + c * c);
    for (std::size_t r = 0; r < a.rows(); ++r) a(r, c) *= scale;
  }
  const SvdResult exact = truncated_svd(a, 6);
  const SvdResult randomized = randomized_svd(a, 6, rng);
  ASSERT_EQ(randomized.sigma.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(randomized.sigma[i], exact.sigma[i],
                0.02 * exact.sigma[0] + 1e-9)
        << "sigma " << i;
  }
  // Reconstruction error comparable to the exact truncation.
  const double exact_err = (a - exact.reconstruct()).frobenius_norm();
  const double rand_err = (a - randomized.reconstruct()).frobenius_norm();
  EXPECT_LE(rand_err, exact_err * 1.2 + 1e-9);
}

TEST(RandomizedSvd, ShapesAndOrthonormality) {
  std::mt19937_64 rng(13);
  const Matrix a = random_matrix(120, 30, 14);
  const SvdResult r = randomized_svd(a, 8, rng);
  EXPECT_EQ(r.u.rows(), 120u);
  EXPECT_EQ(r.u.cols(), 8u);
  EXPECT_EQ(r.v.rows(), 30u);
  EXPECT_EQ(r.v.cols(), 8u);
  expect_orthonormal_columns(r.u, r.sigma, 1e-6);
  expect_orthonormal_columns(r.v, r.sigma, 1e-6);
  for (std::size_t i = 1; i < r.sigma.size(); ++i) {
    EXPECT_GE(r.sigma[i - 1], r.sigma[i]);
  }
}

TEST(RandomizedSvd, ExactForLowRankInput) {
  // Rank-3 matrix: the sketch captures the range exactly.
  std::mt19937_64 rng(15);
  const Matrix left = random_matrix(60, 3, 16);
  const Matrix right = random_matrix(3, 12, 17);
  const Matrix a = left * right;
  const SvdResult r = randomized_svd(a, 3, rng);
  EXPECT_LT(a.max_abs_diff(r.reconstruct()), 1e-8);
}

TEST(RandomizedSvd, ValidatesRank) {
  std::mt19937_64 rng(18);
  const Matrix a = random_matrix(10, 4, 19);
  EXPECT_THROW((void)randomized_svd(a, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)randomized_svd(a, 5, rng), std::invalid_argument);
}

TEST(Svd, SingleColumn) {
  Matrix a(5, 1);
  for (std::size_t i = 0; i < 5; ++i) a(i, 0) = 2.0;
  const SvdResult r = svd(a);
  EXPECT_NEAR(r.sigma[0], 2.0 * std::sqrt(5.0), 1e-12);
  EXPECT_LT(a.max_abs_diff(r.reconstruct()), 1e-12);
}

TEST(Svd, SingleRow) {
  Matrix a(1, 4);
  a(0, 0) = 3.0;
  a(0, 1) = 4.0;
  const SvdResult r = svd(a);
  EXPECT_NEAR(r.sigma[0], 5.0, 1e-12);
  EXPECT_LT(a.max_abs_diff(r.reconstruct()), 1e-12);
}

}  // namespace
}  // namespace jaal::linalg
