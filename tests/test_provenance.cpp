// Alert provenance: the causal chain must reproduce the threshold decision
// it explains, and the JSONL export must be byte-identical across runs and
// thread counts (the ISSUE-5 acceptance bar).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/generators.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "observe/provenance.hpp"
#include "trace/mix.hpp"

namespace jaal::core {
namespace {

struct ProvenanceRun {
  std::vector<inference::Alert> alerts;
  std::string jsonl;
};

// One seeded 3-epoch deployment (Trace-1 background + DDoS), the operating
// point the telemetry pipeline tests use, with provenance toggleable.
ProvenanceRun run_deployment(std::size_t threads, bool provenance = true) {
  trace::TraceProfile profile = trace::trace1_profile();
  profile.packets_per_second = 2000.0;
  trace::BackgroundTraffic background(profile, 7);
  attack::AttackConfig atk;
  atk.victim_ip = evaluation_victim_ip();
  atk.packets_per_second = 5000.0;
  atk.start_time = 1.0;
  atk.seed = 11;
  attack::DistributedSynFlood flood(atk);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  JaalConfig cfg;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 400;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  cfg.monitor_count = 2;
  cfg.epoch_seconds = 1.0;
  cfg.threads = threads;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.observe.provenance = provenance;
  JaalController controller(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              evaluation_rule_vars()));

  ProvenanceRun out;
  std::vector<std::shared_ptr<const observe::AlertProvenance>> records;
  for (const EpochResult& epoch : controller.run(mix, 3.0)) {
    for (const inference::Alert& alert : epoch.alerts) {
      out.alerts.push_back(alert);
      if (alert.provenance) records.push_back(alert.provenance);
    }
  }
  out.jsonl = observe::to_jsonl(records);
  return out;
}

// The margins recorded on every evidence centroid must be exactly the
// recorded thresholds minus the recorded distance, and the counts must
// reproduce the threshold case that raised the alert.
void expect_consistent(const observe::AlertProvenance& p) {
  ASSERT_FALSE(p.centroids.empty());
  ASSERT_FALSE(p.monitors.empty());
  EXPECT_GE(p.tau_d2, p.tau_d1);
  const bool strict = p.threshold_case == observe::ThresholdCase::kStrictMatch;
  for (const observe::CentroidEvidence& c : p.centroids) {
    EXPECT_NEAR(c.margin_d1, p.tau_d1 - c.distance, 1e-12);
    EXPECT_NEAR(c.margin_d2, p.tau_d2 - c.distance, 1e-12);
    // Every evidence centroid sits inside the threshold that admitted it.
    EXPECT_GE(strict ? c.margin_d1 : c.margin_d2, 0.0);
  }
  if (strict) {
    EXPECT_GE(p.strict_count, p.tau_c);
  } else {
    // Case 3 means strict said no and loose said yes.
    EXPECT_LT(p.strict_count, p.tau_c);
    EXPECT_GE(p.loose_count, p.tau_c);
  }
  // Contributing monitors are distinct and ascending.
  for (std::size_t i = 1; i < p.monitors.size(); ++i) {
    EXPECT_LT(p.monitors[i - 1], p.monitors[i]);
  }
}

TEST(Provenance, EveryAlertCarriesAConsistentCausalChain) {
  const ProvenanceRun run = run_deployment(1);
  ASSERT_FALSE(run.alerts.empty());
  for (const inference::Alert& alert : run.alerts) {
    ASSERT_NE(alert.provenance, nullptr);
    EXPECT_EQ(alert.provenance->sid, alert.sid);
    EXPECT_DOUBLE_EQ(alert.provenance->report_fraction, alert.confidence);
    EXPECT_DOUBLE_EQ(alert.provenance->caution, alert.caution);
    expect_consistent(*alert.provenance);
  }
  EXPECT_NE(run.jsonl.find("\"kind\":\"provenance\""), std::string::npos);
}

TEST(Provenance, JsonlIsByteIdenticalAcrossRunsAndThreads) {
  const ProvenanceRun a = run_deployment(1);
  const ProvenanceRun b = run_deployment(1);
  const ProvenanceRun pooled = run_deployment(2);
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.jsonl, pooled.jsonl);
}

TEST(Provenance, ToggleOffAttachesNothingAndKeepsDecisions) {
  const ProvenanceRun on = run_deployment(1, true);
  const ProvenanceRun off = run_deployment(1, false);
  ASSERT_EQ(on.alerts.size(), off.alerts.size());
  for (std::size_t i = 0; i < off.alerts.size(); ++i) {
    EXPECT_EQ(off.alerts[i].provenance, nullptr);
    // Capture is observability only: the decisions are unchanged.
    EXPECT_EQ(off.alerts[i].sid, on.alerts[i].sid);
    EXPECT_EQ(off.alerts[i].matched_packets, on.alerts[i].matched_packets);
  }
  EXPECT_TRUE(off.jsonl.empty());
}

// Case-3 provenance at the engine level: a strict threshold nobody can meet
// forces the uncertain path, and the feedback outcome (verified vs fallback
// vs feedback-off) lands in FeedbackProvenance.
class ProvenanceCase3 : public ::testing::Test {
 protected:
  static const Trial& trial() {
    static const Trial kTrial = [] {
      TrialConfig tcfg;
      tcfg.summarizer.batch_size = 1000;
      tcfg.summarizer.min_batch = 400;
      tcfg.summarizer.rank = 12;
      tcfg.summarizer.centroids = 200;
      tcfg.monitor_count = 2;
      tcfg.profile = trace::trace1_profile();
      tcfg.attack_intensity_min = 1.0;
      tcfg.attack_intensity_max = 1.0;
      return make_trial(packet::AttackType::kDistributedSynFlood, tcfg, 5);
    }();
    return kTrial;
  }

  static inference::EngineConfig engine_config(bool feedback) {
    inference::EngineConfig ecfg;
    // tau_d1 no centroid can satisfy, loose tau_d2 at the operating point:
    // every firing rule goes through case 3.
    ecfg.default_thresholds = {1e-9, 0.03};
    ecfg.feedback_enabled = feedback;
    TrialConfig tcfg;
    tcfg.summarizer.batch_size = 1000;
    tcfg.monitor_count = 2;
    ecfg.tau_c_scale = tau_c_scale_for(tcfg);
    return ecfg;
  }

  static std::vector<rules::Rule> ruleset() {
    return rules::parse_rules(rules::default_ruleset_text(),
                              evaluation_rule_vars());
  }
};

TEST_F(ProvenanceCase3, VerifiedFeedbackIsRecorded) {
  inference::InferenceEngine engine(ruleset(), engine_config(true));
  const auto alerts = engine.infer(trial().aggregate, trial().fetcher());
  ASSERT_FALSE(alerts.empty());
  bool saw_verified = false;
  for (const inference::Alert& alert : alerts) {
    ASSERT_NE(alert.provenance, nullptr);
    const observe::AlertProvenance& p = *alert.provenance;
    EXPECT_NE(p.threshold_case, observe::ThresholdCase::kStrictMatch);
    expect_consistent(p);
    if (p.threshold_case == observe::ThresholdCase::kUncertainVerified) {
      saw_verified = true;
      EXPECT_TRUE(p.feedback.requested);
      EXPECT_TRUE(p.feedback.raw_confirmed);
      EXPECT_FALSE(p.feedback.fallback);
      EXPECT_GT(p.feedback.raw_packets, 0u);
    }
  }
  EXPECT_TRUE(saw_verified);
}

TEST_F(ProvenanceCase3, FailedRetrievalRecordsTheFallback) {
  inference::InferenceEngine engine(ruleset(), engine_config(true));
  const inference::RawPacketFetcher broken =
      [](summarize::MonitorId, const std::vector<std::size_t>&) {
        return inference::RawFetch(std::nullopt);
      };
  const auto alerts = engine.infer(trial().aggregate, broken);
  ASSERT_FALSE(alerts.empty());
  for (const inference::Alert& alert : alerts) {
    ASSERT_NE(alert.provenance, nullptr);
    const observe::AlertProvenance& p = *alert.provenance;
    EXPECT_EQ(p.threshold_case, observe::ThresholdCase::kUncertainAssumed);
    EXPECT_TRUE(p.feedback.requested);
    EXPECT_TRUE(p.feedback.fallback);
    EXPECT_FALSE(p.feedback.raw_confirmed);
    EXPECT_EQ(p.feedback.raw_packets, 0u);
  }
}

TEST_F(ProvenanceCase3, FeedbackOffStandsOnTheLooseDecision) {
  inference::InferenceEngine engine(ruleset(), engine_config(false));
  const auto alerts = engine.infer(trial().aggregate, nullptr);
  ASSERT_FALSE(alerts.empty());
  for (const inference::Alert& alert : alerts) {
    ASSERT_NE(alert.provenance, nullptr);
    const observe::AlertProvenance& p = *alert.provenance;
    EXPECT_EQ(p.threshold_case, observe::ThresholdCase::kUncertainAssumed);
    EXPECT_FALSE(p.feedback.requested);
  }
}

TEST(Provenance, MeanMarginAveragesTheAdmittingThreshold) {
  observe::AlertProvenance p;
  p.threshold_case = observe::ThresholdCase::kStrictMatch;
  p.centroids.push_back({0, 0, 1, 0.0, 0.002, 0.01});
  p.centroids.push_back({1, 3, 2, 0.0, 0.006, 0.03});
  EXPECT_NEAR(p.mean_margin(), 0.004, 1e-15);
  p.threshold_case = observe::ThresholdCase::kUncertainAssumed;
  EXPECT_NEAR(p.mean_margin(), 0.02, 1e-15);
  EXPECT_DOUBLE_EQ(observe::AlertProvenance{}.mean_margin(), 0.0);
}

}  // namespace
}  // namespace jaal::core
