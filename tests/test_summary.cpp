#include "summarize/summary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "linalg/svd.hpp"

namespace jaal::summarize {
namespace {

/// Matrix::data() hands out spans, which have no operator==; compare the
/// underlying scalars bit-for-bit.
template <typename A, typename B>
::testing::AssertionResult SpansBitEqual(const A& a, const B& b) {
  if (std::equal(a.begin(), a.end(), b.begin(), b.end())) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << "scalar spans differ";
}

CombinedSummary sample_combined() {
  CombinedSummary s;
  s.monitor = 3;
  s.centroids = linalg::Matrix{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
  s.counts = {10, 20};
  return s;
}

SplitSummary sample_split() {
  SplitSummary s;
  s.monitor = 7;
  s.u_centroids = linalg::Matrix{{0.5, 0.1}, {0.2, 0.9}, {0.3, 0.3}};  // k=3, r=2
  s.sigma = {2.0, 0.5};
  s.vt = linalg::Matrix{{0.6, 0.8, 0.0, 0.0}, {0.0, 0.0, 1.0, 0.0}};   // r=2, p=4
  s.counts = {5, 6, 7};
  return s;
}

TEST(Summary, CombinedElementCountFormula) {
  // k(p+1) with k=2, p=3.
  EXPECT_EQ(sample_combined().element_count(), 2u * 4u);
}

TEST(Summary, SplitElementCountFormula) {
  // r(k+p+1)+k with r=2, k=3, p=4.
  EXPECT_EQ(sample_split().element_count(), 2u * 8u + 3u);
}

TEST(Summary, InvariantViolationsThrow) {
  CombinedSummary c = sample_combined();
  c.counts.push_back(1);
  EXPECT_THROW(c.check_invariants(), std::logic_error);

  SplitSummary s = sample_split();
  s.sigma.push_back(0.1);
  EXPECT_THROW(s.check_invariants(), std::logic_error);
}

TEST(Summary, SplitReconstructMatchesFactorProduct) {
  const SplitSummary s = sample_split();
  const CombinedSummary c = s.reconstruct();
  EXPECT_EQ(c.monitor, s.monitor);
  EXPECT_EQ(c.counts, s.counts);
  ASSERT_EQ(c.centroids.rows(), 3u);
  ASSERT_EQ(c.centroids.cols(), 4u);
  // Row 0: [0.5, 0.1] * diag(2, .5) * vt = [1.0, 0.05] * vt.
  EXPECT_NEAR(c.centroids(0, 0), 1.0 * 0.6, 1e-12);
  EXPECT_NEAR(c.centroids(0, 1), 1.0 * 0.8, 1e-12);
  EXPECT_NEAR(c.centroids(0, 2), 0.05, 1e-12);
  EXPECT_NEAR(c.centroids(0, 3), 0.0, 1e-12);
}

TEST(Summary, ReconstructionFidelityAgainstSvd) {
  // Round-trip: SVD a random matrix, package as split summary (each row its
  // own "centroid"), reconstruct, compare to the rank-r approximation.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  linalg::Matrix x(20, 6);
  for (double& v : x.data()) v = unit(rng);
  const auto svd = linalg::truncated_svd(x, 3);

  SplitSummary s;
  s.u_centroids = svd.u;
  s.sigma = svd.sigma;
  s.vt = svd.v.transposed();
  s.counts.assign(20, 1);
  const CombinedSummary c = s.reconstruct();
  EXPECT_LT(c.centroids.max_abs_diff(svd.reconstruct()), 1e-9);
}

TEST(Summary, WireBytesIsFourPerElement) {
  const MonitorSummary combined = sample_combined();
  const MonitorSummary split = sample_split();
  EXPECT_EQ(wire_bytes(combined), element_count(combined) * 4);
  EXPECT_EQ(wire_bytes(split), element_count(split) * 4);
}

TEST(Summary, SerializeDeserializeCombined) {
  const MonitorSummary original = sample_combined();
  const auto bytes = serialize(original);
  const MonitorSummary restored = deserialize(bytes);
  const auto& c = std::get<CombinedSummary>(restored);
  const auto& expected = std::get<CombinedSummary>(original);
  EXPECT_EQ(c.monitor, expected.monitor);
  EXPECT_EQ(c.counts, expected.counts);
  EXPECT_LT(c.centroids.max_abs_diff(expected.centroids), 1e-6);
}

TEST(Summary, SerializeDeserializeSplit) {
  const MonitorSummary original = sample_split();
  const auto bytes = serialize(original);
  const MonitorSummary restored = deserialize(bytes);
  const auto& s = std::get<SplitSummary>(restored);
  const auto& expected = std::get<SplitSummary>(original);
  EXPECT_EQ(s.monitor, expected.monitor);
  EXPECT_EQ(s.counts, expected.counts);
  ASSERT_EQ(s.sigma.size(), expected.sigma.size());
  for (std::size_t i = 0; i < s.sigma.size(); ++i) {
    EXPECT_NEAR(s.sigma[i], expected.sigma[i], 1e-6);
  }
  EXPECT_LT(s.vt.max_abs_diff(expected.vt), 1e-6);
}

TEST(Summary, DeserializeRejectsGarbage) {
  EXPECT_THROW((void)deserialize(std::vector<std::uint8_t>{}),
               std::runtime_error);
  EXPECT_THROW((void)deserialize(std::vector<std::uint8_t>{99, 1, 2}),
               std::runtime_error);
  auto bytes = serialize(MonitorSummary{sample_combined()});
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)deserialize(bytes), std::runtime_error);
}

TEST(Summary, WireFormatIsVersioned) {
  const auto f32 = serialize(MonitorSummary{sample_combined()});
  ASSERT_GE(f32.size(), 2u);
  EXPECT_EQ(f32[0], kWireMagic);
  EXPECT_EQ(f32[1], static_cast<std::uint8_t>(WirePrecision::kFloat32));
  const auto f64 = serialize(MonitorSummary{sample_combined()},
                             WirePrecision::kFloat64);
  EXPECT_EQ(f64[0], kWireMagic);
  EXPECT_EQ(f64[1], static_cast<std::uint8_t>(WirePrecision::kFloat64));

  // A pre-versioning buffer started with the bare record tag (1/2) — today
  // that reads as a bad magic byte and is rejected instead of decoding as
  // garbage.
  auto stale = f32;
  stale.erase(stale.begin(), stale.begin() + 2);
  EXPECT_THROW((void)deserialize(stale), std::runtime_error);

  // An unknown future version is rejected with a clear error.
  auto future = f32;
  future[1] = 9;
  EXPECT_THROW((void)deserialize(future), std::runtime_error);
}

TEST(Summary, Float64PrecisionRoundTripsBitExactly) {
  SplitSummary s = sample_split();
  s.sigma[0] = 1.0 / 3.0;  // not representable in float32
  s.u_centroids(0, 0) = 0.1234567890123456789;
  const MonitorSummary original = s;
  const auto bytes = serialize(original, WirePrecision::kFloat64);
  const MonitorSummary roundtripped = deserialize(bytes);
  const auto& restored = std::get<SplitSummary>(roundtripped);
  EXPECT_EQ(restored.sigma[0], s.sigma[0]);
  EXPECT_EQ(restored.u_centroids(0, 0), s.u_centroids(0, 0));
  EXPECT_TRUE(SpansBitEqual(restored.vt.data(), s.vt.data()));
}

// Round-trip fuzz over random Combined/Split instances at both precisions:
// deserialize(serialize(x)) must re-serialize to the identical buffer (the
// serialized form is a fixpoint), and float64 must reproduce every scalar
// bit-for-bit.
TEST(Summary, FuzzRandomSummariesRoundTrip) {
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> value(-10.0, 10.0);
  std::uniform_int_distribution<std::size_t> dim(1, 24);
  std::uniform_int_distribution<std::uint64_t> count(0, 1u << 20);
  for (int iter = 0; iter < 200; ++iter) {
    MonitorSummary s;
    if (iter % 2 == 0) {
      CombinedSummary c;
      c.monitor = static_cast<MonitorId>(iter);
      c.centroids = linalg::Matrix(dim(rng), dim(rng));
      for (double& v : c.centroids.data()) v = value(rng);
      c.counts.resize(c.centroids.rows());
      for (auto& n : c.counts) n = count(rng);
      s = std::move(c);
    } else {
      SplitSummary sp;
      sp.monitor = static_cast<MonitorId>(iter);
      const std::size_t k = dim(rng), r = dim(rng), p = dim(rng);
      sp.u_centroids = linalg::Matrix(k, r);
      sp.vt = linalg::Matrix(r, p);
      for (double& v : sp.u_centroids.data()) v = value(rng);
      for (double& v : sp.vt.data()) v = value(rng);
      sp.sigma.resize(r);
      for (double& v : sp.sigma) v = value(rng);
      sp.counts.resize(k);
      for (auto& n : sp.counts) n = count(rng);
      s = std::move(sp);
    }
    for (const WirePrecision precision :
         {WirePrecision::kFloat32, WirePrecision::kFloat64}) {
      const auto bytes = serialize(s, precision);
      const MonitorSummary restored = deserialize(bytes);
      EXPECT_EQ(restored.index(), s.index());
      // Re-serializing the round-tripped value reproduces the buffer.
      EXPECT_EQ(serialize(restored, precision), bytes) << iter;
      if (precision == WirePrecision::kFloat64) {
        // Full fidelity: every scalar must come back bit-identical.
        if (const auto* c = std::get_if<CombinedSummary>(&s)) {
          const auto& rc = std::get<CombinedSummary>(restored);
          EXPECT_TRUE(SpansBitEqual(rc.centroids.data(), c->centroids.data()));
          EXPECT_EQ(rc.counts, c->counts);
        } else {
          const auto& sp = std::get<SplitSummary>(s);
          const auto& rs = std::get<SplitSummary>(restored);
          EXPECT_TRUE(
              SpansBitEqual(rs.u_centroids.data(), sp.u_centroids.data()));
          EXPECT_EQ(rs.sigma, sp.sigma);
          EXPECT_TRUE(SpansBitEqual(rs.vt.data(), sp.vt.data()));
          EXPECT_EQ(rs.counts, sp.counts);
        }
      }
    }
  }
}

TEST(Summary, FormatCrossoverMatchesPaperFormula) {
  // S2 is cheaper iff r(k+p+1)+k < k(p+1)  (§4.3).  With p=18, k=200:
  // S1 = 3800; r=12 -> S2 = 12*219+200 = 2828 < 3800 (split wins);
  // r=17 -> S2 = 17*219+200 = 3923 > 3800 (combined wins).
  const std::size_t p = 18, k = 200;
  const auto s1 = k * (p + 1);
  const auto s2 = [&](std::size_t r) { return r * (k + p + 1) + k; };
  EXPECT_LT(s2(12), s1);
  EXPECT_GT(s2(17), s1);
}

}  // namespace
}  // namespace jaal::summarize
