#include "summarize/summary.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/svd.hpp"

namespace jaal::summarize {
namespace {

CombinedSummary sample_combined() {
  CombinedSummary s;
  s.monitor = 3;
  s.centroids = linalg::Matrix{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
  s.counts = {10, 20};
  return s;
}

SplitSummary sample_split() {
  SplitSummary s;
  s.monitor = 7;
  s.u_centroids = linalg::Matrix{{0.5, 0.1}, {0.2, 0.9}, {0.3, 0.3}};  // k=3, r=2
  s.sigma = {2.0, 0.5};
  s.vt = linalg::Matrix{{0.6, 0.8, 0.0, 0.0}, {0.0, 0.0, 1.0, 0.0}};   // r=2, p=4
  s.counts = {5, 6, 7};
  return s;
}

TEST(Summary, CombinedElementCountFormula) {
  // k(p+1) with k=2, p=3.
  EXPECT_EQ(sample_combined().element_count(), 2u * 4u);
}

TEST(Summary, SplitElementCountFormula) {
  // r(k+p+1)+k with r=2, k=3, p=4.
  EXPECT_EQ(sample_split().element_count(), 2u * 8u + 3u);
}

TEST(Summary, InvariantViolationsThrow) {
  CombinedSummary c = sample_combined();
  c.counts.push_back(1);
  EXPECT_THROW(c.check_invariants(), std::logic_error);

  SplitSummary s = sample_split();
  s.sigma.push_back(0.1);
  EXPECT_THROW(s.check_invariants(), std::logic_error);
}

TEST(Summary, SplitReconstructMatchesFactorProduct) {
  const SplitSummary s = sample_split();
  const CombinedSummary c = s.reconstruct();
  EXPECT_EQ(c.monitor, s.monitor);
  EXPECT_EQ(c.counts, s.counts);
  ASSERT_EQ(c.centroids.rows(), 3u);
  ASSERT_EQ(c.centroids.cols(), 4u);
  // Row 0: [0.5, 0.1] * diag(2, .5) * vt = [1.0, 0.05] * vt.
  EXPECT_NEAR(c.centroids(0, 0), 1.0 * 0.6, 1e-12);
  EXPECT_NEAR(c.centroids(0, 1), 1.0 * 0.8, 1e-12);
  EXPECT_NEAR(c.centroids(0, 2), 0.05, 1e-12);
  EXPECT_NEAR(c.centroids(0, 3), 0.0, 1e-12);
}

TEST(Summary, ReconstructionFidelityAgainstSvd) {
  // Round-trip: SVD a random matrix, package as split summary (each row its
  // own "centroid"), reconstruct, compare to the rank-r approximation.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  linalg::Matrix x(20, 6);
  for (double& v : x.data()) v = unit(rng);
  const auto svd = linalg::truncated_svd(x, 3);

  SplitSummary s;
  s.u_centroids = svd.u;
  s.sigma = svd.sigma;
  s.vt = svd.v.transposed();
  s.counts.assign(20, 1);
  const CombinedSummary c = s.reconstruct();
  EXPECT_LT(c.centroids.max_abs_diff(svd.reconstruct()), 1e-9);
}

TEST(Summary, WireBytesIsFourPerElement) {
  const MonitorSummary combined = sample_combined();
  const MonitorSummary split = sample_split();
  EXPECT_EQ(wire_bytes(combined), element_count(combined) * 4);
  EXPECT_EQ(wire_bytes(split), element_count(split) * 4);
}

TEST(Summary, SerializeDeserializeCombined) {
  const MonitorSummary original = sample_combined();
  const auto bytes = serialize(original);
  const MonitorSummary restored = deserialize(bytes);
  const auto& c = std::get<CombinedSummary>(restored);
  const auto& expected = std::get<CombinedSummary>(original);
  EXPECT_EQ(c.monitor, expected.monitor);
  EXPECT_EQ(c.counts, expected.counts);
  EXPECT_LT(c.centroids.max_abs_diff(expected.centroids), 1e-6);
}

TEST(Summary, SerializeDeserializeSplit) {
  const MonitorSummary original = sample_split();
  const auto bytes = serialize(original);
  const MonitorSummary restored = deserialize(bytes);
  const auto& s = std::get<SplitSummary>(restored);
  const auto& expected = std::get<SplitSummary>(original);
  EXPECT_EQ(s.monitor, expected.monitor);
  EXPECT_EQ(s.counts, expected.counts);
  ASSERT_EQ(s.sigma.size(), expected.sigma.size());
  for (std::size_t i = 0; i < s.sigma.size(); ++i) {
    EXPECT_NEAR(s.sigma[i], expected.sigma[i], 1e-6);
  }
  EXPECT_LT(s.vt.max_abs_diff(expected.vt), 1e-6);
}

TEST(Summary, DeserializeRejectsGarbage) {
  EXPECT_THROW((void)deserialize(std::vector<std::uint8_t>{}),
               std::runtime_error);
  EXPECT_THROW((void)deserialize(std::vector<std::uint8_t>{99, 1, 2}),
               std::runtime_error);
  auto bytes = serialize(MonitorSummary{sample_combined()});
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)deserialize(bytes), std::runtime_error);
}

TEST(Summary, FormatCrossoverMatchesPaperFormula) {
  // S2 is cheaper iff r(k+p+1)+k < k(p+1)  (§4.3).  With p=18, k=200:
  // S1 = 3800; r=12 -> S2 = 12*219+200 = 2828 < 3800 (split wins);
  // r=17 -> S2 = 17*219+200 = 3923 > 3800 (combined wins).
  const std::size_t p = 18, k = 200;
  const auto s1 = k * (p + 1);
  const auto s2 = [&](std::size_t r) { return r * (k + p + 1) + k; };
  EXPECT_LT(s2(12), s1);
  EXPECT_GT(s2(17), s1);
}

}  // namespace
}  // namespace jaal::summarize
