#include "summarize/minibatch.hpp"

#include <gtest/gtest.h>

#include <random>

#include "summarize/kmeans.hpp"
#include "summarize/normalize.hpp"
#include "trace/background.hpp"

namespace jaal::summarize {
namespace {

TEST(MiniBatch, ValidatesConfig) {
  EXPECT_THROW(MiniBatchClusterer(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(MiniBatchClusterer(4, 0, 1), std::invalid_argument);
}

TEST(MiniBatch, RejectsWrongDimension) {
  MiniBatchClusterer mb(4, 3, 1);
  const double v[] = {1.0, 2.0};
  EXPECT_THROW(mb.add(std::span<const double>(v)), std::invalid_argument);
}

TEST(MiniBatch, FirstKSamplesSeedCentroids) {
  MiniBatchClusterer mb(3, 2, 1);
  const double a[] = {0.0, 0.0};
  const double b[] = {1.0, 1.0};
  const double c[] = {2.0, 2.0};
  mb.add(std::span<const double>(a));
  mb.add(std::span<const double>(b));
  mb.add(std::span<const double>(c));
  EXPECT_DOUBLE_EQ(mb.centroids()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(mb.centroids()(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(mb.centroids()(2, 0), 2.0);
}

TEST(MiniBatch, CentroidsConvergeToClusterMeans) {
  // Two tight blobs; after many updates the live centroids should sit on
  // the blob means.
  std::mt19937_64 rng(2);
  std::normal_distribution<double> noise(0.0, 0.01);
  MiniBatchClusterer mb(2, 2, 3);
  for (int i = 0; i < 2000; ++i) {
    const bool left = i % 2 == 0;
    const double v[] = {(left ? 0.1 : 0.9) + noise(rng),
                        (left ? 0.1 : 0.9) + noise(rng)};
    mb.add(std::span<const double>(v));
  }
  // One centroid near (0.1, 0.1), the other near (0.9, 0.9).
  const double c00 = mb.centroids()(0, 0);
  const double c10 = mb.centroids()(1, 0);
  EXPECT_NEAR(std::min(c00, c10), 0.1, 0.05);
  EXPECT_NEAR(std::max(c00, c10), 0.9, 0.05);
}

TEST(MiniBatch, EpochFlushResetsCountsKeepsCentroids) {
  MiniBatchClusterer mb(8, packet::kFieldCount, 4);
  trace::BackgroundTraffic gen(trace::trace1_profile(), 4);
  for (const auto& pkt : trace::take(gen, 300)) mb.add(pkt);

  const auto epoch1 = mb.flush_epoch();
  std::uint64_t total = 0;
  for (auto c : epoch1.counts) total += c;
  EXPECT_EQ(total, 300u);

  // Second epoch starts from zero membership but warm centroids.
  for (const auto& pkt : trace::take(gen, 100)) mb.add(pkt);
  const auto epoch2 = mb.flush_epoch();
  total = 0;
  for (auto c : epoch2.counts) total += c;
  EXPECT_EQ(total, 100u);
}

TEST(MiniBatch, QuantizationErrorWithinFactorOfBatchKMeans) {
  // Streaming quality: mean quantization error should be within a modest
  // factor of full batch k-means++ on the same data.
  trace::BackgroundTraffic gen(trace::trace1_profile(), 5);
  const auto packets = trace::take(gen, 1000);
  const linalg::Matrix x = to_normalized_matrix(packets);

  MiniBatchClusterer mb(64, packet::kFieldCount, 6);
  for (const auto& pkt : packets) mb.add(pkt);

  std::mt19937_64 rng(6);
  const auto batch = kmeans(x, 64, rng);
  const double batch_mse = batch.inertia / static_cast<double>(x.rows());
  EXPECT_LT(mb.mean_quantization_error(), batch_mse * 5.0 + 1e-6);
}

TEST(MiniBatch, SeenCountsEveryAdd) {
  MiniBatchClusterer mb(4, 2, 7);
  const double v[] = {0.5, 0.5};
  for (int i = 0; i < 10; ++i) mb.add(std::span<const double>(v));
  EXPECT_EQ(mb.seen(), 10u);
}

}  // namespace
}  // namespace jaal::summarize
