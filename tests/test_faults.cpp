// Unit tests for the fault-injection transport: scenario validation,
// deterministic seeded loss, burst correlation, crash windows, link-model
// lateness/tail drops, and the provably bounded feedback retry.
#include "faults/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace jaal::faults {
namespace {

std::vector<packet::PacketRecord> some_packets(std::size_t n) {
  return std::vector<packet::PacketRecord>(n);
}

TEST(Faults, ScenarioValidationThrowsOnMisconfiguration) {
  FaultScenario bad;
  bad.drop_rate = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.burst_rate = 0.5;  // burst without a length
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.crashes.push_back({0, 5, 2});  // restart before crash
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.retry.max_attempts = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.retry.multiplier = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.use_link_model = true;
  bad.link.rate_bytes_per_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // The transport constructor enforces the same policy.
  bad = {};
  bad.feedback_failure_rate = -0.1;
  EXPECT_THROW(SummaryTransport(bad, 2), std::invalid_argument);
  EXPECT_NO_THROW(FaultScenario{}.validate());
}

TEST(Faults, FaultFreeScenarioDeliversEverythingInstantly) {
  FaultScenario none;
  EXPECT_TRUE(none.fault_free());
  SummaryTransport transport(none, 3);
  transport.begin_epoch(0, 10.0, 12.0);
  for (std::size_t m = 0; m < 3; ++m) {
    const ShipOutcome out = transport.ship(m, 4096);
    EXPECT_EQ(out.status, ShipStatus::kDelivered);
    EXPECT_DOUBLE_EQ(out.arrival_time, 10.0);
  }
  EXPECT_EQ(transport.stats().summaries_delivered, 3u);
  EXPECT_EQ(transport.stats().summaries_dropped, 0u);
}

TEST(Faults, SeededDropsAreDeterministicAcrossTransports) {
  FaultScenario scenario;
  scenario.seed = 99;
  scenario.drop_rate = 0.4;
  std::vector<ShipStatus> a, b;
  for (std::vector<ShipStatus>* out : {&a, &b}) {
    SummaryTransport transport(scenario, 4);
    for (std::uint64_t epoch = 0; epoch < 32; ++epoch) {
      transport.begin_epoch(epoch, static_cast<double>(epoch), epoch + 0.5);
      for (std::size_t m = 0; m < 4; ++m) {
        out->push_back(transport.ship(m, 1000).status);
      }
    }
  }
  EXPECT_EQ(a, b);
  // With drop_rate 0.4 over 128 ships both fates must occur.
  EXPECT_NE(std::count(a.begin(), a.end(), ShipStatus::kDropped), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), ShipStatus::kDelivered), 0);
}

TEST(Faults, BurstsDropConsecutiveSummariesOnOneLink) {
  FaultScenario scenario;
  scenario.seed = 7;
  scenario.drop_rate = 0.2;
  scenario.burst_rate = 1.0;  // every drop opens a burst
  scenario.burst_length = 3;
  SummaryTransport transport(scenario, 1);
  std::vector<ShipStatus> fates;
  for (std::uint64_t epoch = 0; epoch < 64; ++epoch) {
    transport.begin_epoch(epoch, static_cast<double>(epoch), epoch + 0.5);
    fates.push_back(transport.ship(0, 1000).status);
  }
  // Find the first random drop; the next burst_length ships on the same
  // link must be dropped too.
  auto first = std::find(fates.begin(), fates.end(), ShipStatus::kDropped);
  ASSERT_NE(first, fates.end());
  const std::size_t i = static_cast<std::size_t>(first - fates.begin());
  ASSERT_LT(i + 3, fates.size());
  EXPECT_EQ(fates[i + 1], ShipStatus::kDropped);
  EXPECT_EQ(fates[i + 2], ShipStatus::kDropped);
  EXPECT_EQ(fates[i + 3], ShipStatus::kDropped);
}

TEST(Faults, CrashWindowsSilenceTheMonitorForWholeEpochs) {
  FaultScenario scenario;
  scenario.crashes.push_back({1, 3, 6});
  SummaryTransport transport(scenario, 2);
  EXPECT_TRUE(transport.monitor_up(1, 2));
  EXPECT_FALSE(transport.monitor_up(1, 3));
  EXPECT_FALSE(transport.monitor_up(1, 5));
  EXPECT_TRUE(transport.monitor_up(1, 6));   // restart epoch: back up
  EXPECT_TRUE(transport.monitor_up(0, 4));   // other monitors unaffected
}

TEST(Faults, SlowLinkMakesSummariesLateAndDeadlineIsHonored) {
  FaultScenario scenario;
  scenario.use_link_model = true;
  scenario.link.rate_bytes_per_s = 1000.0;  // 4000 B take 4 s
  scenario.link.propagation_s = 0.0;
  scenario.link.queue_limit_bytes = 1 << 20;
  SummaryTransport transport(scenario, 1);

  transport.begin_epoch(0, 0.0, 1.0);  // deadline 1 s after close
  const ShipOutcome late = transport.ship(0, 4000);
  EXPECT_EQ(late.status, ShipStatus::kLate);
  EXPECT_DOUBLE_EQ(late.arrival_time, 4.0);

  transport.begin_epoch(1, 10.0, 20.0);  // generous deadline
  const ShipOutcome ok = transport.ship(0, 4000);
  EXPECT_EQ(ok.status, ShipStatus::kDelivered);
  EXPECT_DOUBLE_EQ(ok.arrival_time, 14.0);
  EXPECT_EQ(transport.stats().summaries_late, 1u);
  EXPECT_EQ(transport.stats().summaries_delivered, 1u);
}

TEST(Faults, LinkQueueTailDropCountsAsDropped) {
  FaultScenario scenario;
  scenario.use_link_model = true;
  scenario.link.rate_bytes_per_s = 1e6;
  scenario.link.queue_limit_bytes = 100;  // smaller than one summary
  SummaryTransport transport(scenario, 1);
  transport.begin_epoch(0, 0.0, 5.0);
  EXPECT_EQ(transport.ship(0, 4000).status, ShipStatus::kDropped);
  EXPECT_EQ(transport.stats().summaries_dropped, 1u);
}

TEST(Faults, RetrySucceedsFirstAttemptWhenHealthy) {
  SummaryTransport transport(FaultScenario{}, 1);
  transport.begin_epoch(0, 0.0, 1.0);
  const FetchResult r =
      transport.fetch(0, [](std::size_t) { return some_packets(5); });
  ASSERT_TRUE(r.packets.has_value());
  EXPECT_EQ(r.packets->size(), 5u);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_DOUBLE_EQ(r.backoff_s, 0.0);
}

TEST(Faults, RetryAttemptsAndBackoffAreProvablyBounded) {
  FaultScenario scenario;
  scenario.feedback_failure_rate = 1.0;  // every attempt fails
  scenario.retry.max_attempts = 4;
  scenario.retry.base_backoff_s = 0.1;
  scenario.retry.multiplier = 2.0;
  scenario.retry.timeout_s = 10.0;  // not the binding constraint here
  SummaryTransport transport(scenario, 1);
  transport.begin_epoch(0, 0.0, 1.0);
  std::size_t calls = 0;
  const FetchResult r = transport.fetch(0, [&](std::size_t) {
    ++calls;
    return some_packets(1);
  });
  EXPECT_FALSE(r.packets.has_value());
  EXPECT_EQ(calls, 0u);  // never reached the monitor
  // Bounded attempts: exactly max_attempts, never more.
  EXPECT_EQ(r.attempts, 4u);
  // Bounded backoff: 0.1 + 0.2 + 0.4 between the 4 attempts.
  EXPECT_DOUBLE_EQ(r.backoff_s, 0.7);
  EXPECT_LE(r.backoff_s, scenario.retry.max_total_backoff_s());
  EXPECT_EQ(transport.stats().fetch_giveups, 1u);
  EXPECT_EQ(transport.stats().fetch_attempts, 4u);
}

TEST(Faults, RetryTimeoutCutsBackoffShort) {
  FaultScenario scenario;
  scenario.feedback_failure_rate = 1.0;
  scenario.retry.max_attempts = 10;
  scenario.retry.base_backoff_s = 0.5;
  scenario.retry.multiplier = 2.0;
  scenario.retry.timeout_s = 0.6;  // allows one 0.5 s backoff, not a 1.0 s
  SummaryTransport transport(scenario, 1);
  transport.begin_epoch(0, 0.0, 1.0);
  const FetchResult r =
      transport.fetch(0, [](std::size_t) { return some_packets(1); });
  EXPECT_FALSE(r.packets.has_value());
  EXPECT_EQ(r.attempts, 2u);  // attempt, back off 0.5 s, attempt, budget out
  EXPECT_DOUBLE_EQ(r.backoff_s, 0.5);
  EXPECT_LE(r.backoff_s, scenario.retry.timeout_s);
  EXPECT_DOUBLE_EQ(scenario.retry.max_total_backoff_s(), 0.6);
}

TEST(Faults, CrashedMonitorFailsEveryFetchAttempt) {
  FaultScenario scenario;
  scenario.crashes.push_back({0, 2, 4});
  scenario.retry.max_attempts = 3;
  SummaryTransport transport(scenario, 1);
  transport.begin_epoch(2, 0.0, 1.0);  // inside the crash window
  std::size_t calls = 0;
  const FetchResult down = transport.fetch(0, [&](std::size_t) {
    ++calls;
    return some_packets(1);
  });
  EXPECT_FALSE(down.packets.has_value());
  EXPECT_EQ(down.attempts, 3u);
  EXPECT_EQ(calls, 0u);
  transport.begin_epoch(4, 2.0, 3.0);  // after restart
  const FetchResult up =
      transport.fetch(0, [](std::size_t) { return some_packets(2); });
  ASSERT_TRUE(up.packets.has_value());
  EXPECT_EQ(up.packets->size(), 2u);
}

TEST(Faults, ShipAccountingIsConsistent) {
  FaultScenario scenario;
  scenario.seed = 3;
  scenario.drop_rate = 0.3;
  scenario.delay_mean_s = 0.2;
  scenario.delay_jitter_s = 0.1;
  SummaryTransport transport(scenario, 4);
  for (std::uint64_t epoch = 0; epoch < 16; ++epoch) {
    transport.begin_epoch(epoch, static_cast<double>(epoch), epoch + 0.25);
    for (std::size_t m = 0; m < 4; ++m) (void)transport.ship(m, 2000);
  }
  const TransportStats& s = transport.stats();
  EXPECT_EQ(s.summaries_shipped, 64u);
  EXPECT_EQ(s.summaries_delivered + s.summaries_dropped + s.summaries_late,
            s.summaries_shipped);
  EXPECT_GT(s.summaries_late, 0u);  // mean delay ~ deadline: some miss it
}

}  // namespace
}  // namespace jaal::faults
