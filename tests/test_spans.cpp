// Trace spans: derived ids, parent/child propagation, and the JSONL export
// determinism contract (sorted output, wall-clock fields excluded).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/span.hpp"

namespace jaal::telemetry {
namespace {

TEST(Spans, DerivedIdsAreDeterministicAndNonZero) {
  const std::uint64_t a = derive_span_id(0, "epoch", 3);
  EXPECT_EQ(a, derive_span_id(0, "epoch", 3));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, derive_span_id(0, "epoch", 4));      // key matters
  EXPECT_NE(a, derive_span_id(0, "summarize", 3));  // name matters
  EXPECT_NE(a, derive_span_id(a, "epoch", 3));      // parent matters
}

TEST(Spans, RootAndChildIdentity) {
  Tracer tracer;
  SpanContext root_ctx;
  {
    Span root = tracer.span("epoch", {}, 7);
    root.set_sim_time(2.5);
    root.attr("packets", 1000.0);
    root_ctx = root.context();
    Span child = tracer.span("summarize", root_ctx, 1);
    Span grandchild = tracer.span("svd", child.context(), 1);
  }
  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 3u);
  // Destruction order records inner-to-outer; find by name instead.
  const SpanRecord* root = nullptr;
  const SpanRecord* child = nullptr;
  const SpanRecord* grandchild = nullptr;
  for (const auto& r : records) {
    if (r.name == "epoch") root = &r;
    if (r.name == "summarize") child = &r;
    if (r.name == "svd") grandchild = &r;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  // Root: trace id comes from the key; no parent.
  EXPECT_EQ(root->trace_id, 7u);
  EXPECT_EQ(root->parent_id, 0u);
  ASSERT_EQ(root->attrs.size(), 1u);
  EXPECT_EQ(root->attrs[0].first, "packets");
  // Children: inherit trace id, chain parent ids, inherit sim_time.
  EXPECT_EQ(child->trace_id, 7u);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_DOUBLE_EQ(child->sim_time, 2.5);
  EXPECT_EQ(grandchild->parent_id, child->span_id);
  EXPECT_EQ(grandchild->trace_id, 7u);
  // Ids are reproducible from the path.
  EXPECT_EQ(root->span_id, derive_span_id(0, "epoch", 7));
  EXPECT_EQ(child->span_id, derive_span_id(root->span_id, "summarize", 1));
}

TEST(Spans, InertSpanIsSafe) {
  Span inert;
  inert.attr("x", 1.0);
  inert.set_sim_time(3.0);
  inert.finish();  // no tracer: no-op, no crash
  const SpanContext ctx = inert.context();
  EXPECT_EQ(ctx.span_id, 0u);
}

TEST(Spans, MoveTransfersOwnership) {
  Tracer tracer;
  {
    Span a = tracer.span("epoch", {}, 1);
    Span b = std::move(a);
    a.finish();  // moved-from: inert
    EXPECT_EQ(tracer.size(), 0u);
  }  // b records on destruction
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Spans, ConcurrentRecordingProducesTheSameSpanSet) {
  // Thread interleaving changes recording order but not span identity; the
  // sorted JSONL is therefore identical run to run.  (TSan covers races.)
  auto run_once = [] {
    Tracer tracer;
    Span root = tracer.span("epoch", {}, 0);
    const SpanContext ctx = root.context();
    std::vector<std::thread> workers;
    for (std::uint64_t m = 0; m < 4; ++m) {
      workers.emplace_back([&tracer, ctx, m] {
        Span monitor_span = tracer.span("summarize", ctx, m);
        Span svd = tracer.span("svd", monitor_span.context(), m);
        svd.attr("rank", 12.0);
      });
    }
    for (auto& w : workers) w.join();
    root.finish();
    return to_jsonl({}, tracer.records(), {.include_timings = false});
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Spans, JsonlDeterministicModeExcludesWallClock) {
  MetricsRegistry reg;
#ifndef JAAL_TELEMETRY_DISABLED
  reg.counter("jaal_monitor_packets_observed_total").add(5);
  reg.histogram("jaal_summarize_svd_ms").observe(1.5);
  reg.counter("jaal_runtime_tasks_submitted_total").add(2);
#else
  (void)reg.counter("jaal_monitor_packets_observed_total");
  (void)reg.histogram("jaal_summarize_svd_ms");
  (void)reg.counter("jaal_runtime_tasks_submitted_total");
#endif
  Tracer tracer;
  { Span s = tracer.span("epoch", {}, 0); }

  const std::string full = to_jsonl(reg.snapshot(), tracer.records());
  EXPECT_NE(full.find("jaal_summarize_svd_ms"), std::string::npos);
  EXPECT_NE(full.find("jaal_runtime_tasks_submitted_total"),
            std::string::npos);
  EXPECT_NE(full.find("duration_ms"), std::string::npos);

  const std::string det = to_jsonl(reg.snapshot(), tracer.records(),
                                   {.include_timings = false});
  EXPECT_NE(det.find("jaal_monitor_packets_observed_total"),
            std::string::npos);
  EXPECT_EQ(det.find("jaal_summarize_svd_ms"), std::string::npos);
  EXPECT_EQ(det.find("jaal_runtime_tasks_submitted_total"),
            std::string::npos);
  EXPECT_EQ(det.find("duration_ms"), std::string::npos);
}

TEST(Spans, WallClockMetricClassifier) {
  EXPECT_TRUE(is_wall_clock_metric("jaal_summarize_svd_ms"));
  EXPECT_TRUE(is_wall_clock_metric("jaal_runtime_stage_ms{stage=\"infer\"}"));
  EXPECT_TRUE(is_wall_clock_metric("jaal_runtime_tasks_submitted_total"));
  // The profiler family is wall-clock-derived even where the name carries
  // no "_ms" (counters of straggler flags, profiled epochs): keep it out of
  // deterministic exports and the persisted ops deltas wholesale.
  EXPECT_TRUE(is_wall_clock_metric("jaal_profile_epochs_total"));
  EXPECT_TRUE(is_wall_clock_metric("jaal_profile_stragglers_total"));
  EXPECT_TRUE(
      is_wall_clock_metric("jaal_profile_stage_exclusive_ms{stage=\"infer\"}"));
  EXPECT_FALSE(is_wall_clock_metric("jaal_monitor_packets_observed_total"));
  EXPECT_FALSE(is_wall_clock_metric("jaal_summarize_svd_sweeps"));
}

TEST(Spans, DurationOverrideSticks) {
  Tracer tracer;
  {
    Span s = tracer.span("store_append", {}, 4);
    s.set_duration_ms(12.5);
  }
  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].duration_ms, 12.5);
}

TEST(Spans, DrainMovesSpansButRecordsStillSeesThem) {
  Tracer tracer;
  { Span s = tracer.span("epoch", {}, 0); }
  { Span s = tracer.span("epoch", {}, 1); }
  // First drain returns everything recorded so far...
  const std::vector<SpanRecord> first = tracer.drain();
  EXPECT_EQ(first.size(), 2u);
  // ...a second drain returns only what arrived since...
  { Span s = tracer.span("epoch", {}, 2); }
  const std::vector<SpanRecord> second = tracer.drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].trace_id, 2u);
  // ...and records()/size() still cover the drained archive, so the
  // end-of-run exports are unchanged by per-epoch draining.
  EXPECT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.size(), 3u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(Spans, JsonlSpanOrderIndependentOfRecordingOrder) {
  // Two tracers record the same spans in opposite orders; exports match.
  auto make_records = [](bool reversed) {
    Tracer tracer;
    std::vector<Span> spans;
    if (reversed) {
      { Span s = tracer.span("b", {}, 2); }
      { Span s = tracer.span("a", {}, 1); }
    } else {
      { Span s = tracer.span("a", {}, 1); }
      { Span s = tracer.span("b", {}, 2); }
    }
    return to_jsonl({}, tracer.records(), {.include_timings = false});
  };
  EXPECT_EQ(make_records(false), make_records(true));
}

}  // namespace
}  // namespace jaal::telemetry
