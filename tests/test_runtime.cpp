#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace jaal::runtime {
namespace {

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 21 * 2; });
  auto b = pool.submit([] { return std::string("jaal"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "jaal");
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleElementRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          0, 1000,
          [](std::size_t i) {
            if (i == 500) throw std::runtime_error("boom");
          },
          16),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForInsideSubmittedTasksCompletes) {
  // Flush tasks call parallel_for from inside pool workers (k-means inside
  // a monitor flush); caller participation must guarantee progress even
  // when every worker is busy with an outer task.
  ThreadPool pool(2);
  std::vector<std::future<long>> outer;
  for (int t = 0; t < 4; ++t) {
    outer.push_back(pool.submit([&pool] {
      std::vector<long> partial(256, 0);
      pool.parallel_for(0, partial.size(), [&](std::size_t i) {
        partial[i] = static_cast<long>(i);
      });
      return std::accumulate(partial.begin(), partial.end(), 0L);
    }));
  }
  for (auto& f : outer) EXPECT_EQ(f.get(), 255L * 256L / 2);
}

// Runtime stats are backed by the telemetry registry; under
// -DJAAL_TELEMETRY=OFF the counters compile to no-ops, so the count
// assertions only hold in the default build.
#ifndef JAAL_TELEMETRY_DISABLED
TEST(ThreadPool, StatsCountTasksAndParallelFor) {
  ThreadPool pool(2);
  pool.submit([] {}).get();
  pool.parallel_for(0, 64, [](std::size_t) {}, 8);
  const RuntimeStatsSnapshot snap = pool.stats().snapshot(pool.threads());
  EXPECT_EQ(snap.threads, 2u);
  EXPECT_GE(snap.tasks_submitted, 1u);
  EXPECT_EQ(snap.parallel_for_calls, 1u);
}

TEST(RuntimeStats, StageTimerAccumulatesNamedStages) {
  RuntimeStats stats;
  { StageTimer t(&stats, "flush"); }
  { StageTimer t(&stats, "flush"); }
  { StageTimer t(&stats, "infer"); }
  { StageTimer t(nullptr, "ignored"); }  // null stats: no-op
  const RuntimeStatsSnapshot snap = stats.snapshot();
  ASSERT_EQ(snap.stages.size(), 2u);
  EXPECT_EQ(snap.stages[0].name, "flush");
  EXPECT_EQ(snap.stages[0].calls, 2u);
  EXPECT_EQ(snap.stages[1].name, "infer");
  EXPECT_EQ(snap.stages[1].calls, 1u);
  EXPECT_GE(snap.stages[0].total_ms, snap.stages[0].max_ms);
}
#endif  // JAAL_TELEMETRY_DISABLED

TEST(ThreadsFromEnv, ParsesOverrideAndFallsBack) {
  ::setenv("JAAL_THREADS", "6", 1);
  EXPECT_EQ(threads_from_env(1), 6u);
  ::setenv("JAAL_THREADS", "not-a-number", 1);
  EXPECT_EQ(threads_from_env(3), 3u);
  ::setenv("JAAL_THREADS", "0", 1);  // 0 = all hardware threads
  EXPECT_GE(threads_from_env(1), 1u);
  ::unsetenv("JAAL_THREADS");
  EXPECT_EQ(threads_from_env(5), 5u);
}

}  // namespace
}  // namespace jaal::runtime
