// The end-to-end telemetry contract on a real deployment: the deterministic
// JSONL trace of a seeded run is byte-identical across runs (wall-clock
// durations excluded), the span tree has the documented pipeline shape, and
// the thread pool's RuntimeStats fold into the deployment registry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attack/generators.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/mix.hpp"

namespace jaal::core {
namespace {

struct DeploymentTrace {
  std::string jsonl;  ///< Deterministic export (no wall-clock fields).
  std::vector<telemetry::SpanRecord> spans;
  telemetry::MetricsSnapshot snapshot;
  std::uint64_t packets = 0;
  std::size_t epochs_reporting = 0;
};

// One seeded 3-epoch deployment (Trace-1 background + DDoS) with a fresh
// Telemetry bundle, the operating point the integration tests use.
DeploymentTrace run_deployment(std::size_t threads) {
  telemetry::Telemetry tel;

  trace::TraceProfile profile = trace::trace1_profile();
  profile.packets_per_second = 2000.0;
  trace::BackgroundTraffic background(profile, 7);
  attack::AttackConfig atk;
  atk.victim_ip = evaluation_victim_ip();
  atk.packets_per_second = 5000.0;
  atk.start_time = 1.0;
  atk.seed = 11;
  attack::DistributedSynFlood flood(atk);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  JaalConfig cfg;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 400;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  cfg.monitor_count = 2;
  cfg.epoch_seconds = 1.0;
  cfg.threads = threads;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.telemetry = &tel;
  JaalController controller(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              evaluation_rule_vars()));

  DeploymentTrace out;
  for (const EpochResult& epoch : controller.run(mix, 3.0)) {
    out.packets += epoch.packets;
    out.epochs_reporting += epoch.monitors_reporting > 0 ? 1 : 0;
  }
  out.snapshot = tel.metrics.snapshot();
  out.spans = tel.tracer.records();
  out.jsonl = telemetry::to_jsonl(out.snapshot, out.spans,
                                  {.include_timings = false});
  return out;
}

const telemetry::SpanRecord* find_span(
    const std::vector<telemetry::SpanRecord>& spans, const std::string& name,
    std::uint64_t trace_id) {
  for (const auto& s : spans) {
    if (s.name == name && s.trace_id == trace_id) return &s;
  }
  return nullptr;
}

// The acceptance criterion: a seeded run's JSONL trace is byte-identical
// across two runs once wall-clock durations are excluded.
TEST(TelemetryPipeline, SeededTraceIsByteIdenticalAcrossRuns) {
  const DeploymentTrace a = run_deployment(1);
  const DeploymentTrace b = run_deployment(1);
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_GT(a.packets, 0u);
  EXPECT_GT(a.epochs_reporting, 0u);
  EXPECT_EQ(a.jsonl, b.jsonl);
  // And the export is not trivially empty of content.
  EXPECT_NE(a.jsonl.find("\"span\""), std::string::npos);
  EXPECT_NE(a.jsonl.find("jaal_monitor_packets_observed_total"),
            std::string::npos);
  // Wall-clock fields stay out of the deterministic export.
  EXPECT_EQ(a.jsonl.find("duration_ms"), std::string::npos);
  EXPECT_EQ(a.jsonl.find("_ms\""), std::string::npos);
}

TEST(TelemetryPipeline, SerialAndParallelTracesMatch) {
  // Threads change wall clock only; the deterministic trace (span ids,
  // attrs, sim-time metrics) is identical.  jaal_runtime_* metrics exist
  // only in the pool build and are wall-clock, so the export excludes them.
  const DeploymentTrace serial = run_deployment(1);
  const DeploymentTrace pooled = run_deployment(2);
  EXPECT_EQ(serial.jsonl, pooled.jsonl);
}

TEST(TelemetryPipeline, EpochTraceHasThePipelineShape) {
  const DeploymentTrace run = run_deployment(1);
  // Find a trace where monitors reported (epoch 0 may be silent depending
  // on phase; with 2000 pps and 1 s epochs every epoch reports).
  const auto* epoch = find_span(run.spans, "epoch", 0);
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->parent_id, 0u);
  EXPECT_GE(epoch->sim_time, 0.0);

  const char* stages[] = {"observe", "summarize", "ship",
                          "aggregate", "infer", "postprocess"};
  for (const char* stage : stages) {
    const auto* span = find_span(run.spans, stage, 0);
    ASSERT_NE(span, nullptr) << "missing stage span: " << stage;
    EXPECT_EQ(span->parent_id, epoch->span_id) << stage;
    EXPECT_EQ(span->trace_id, epoch->trace_id) << stage;
  }

  // svd/kmeans hang off "summarize", one per reporting monitor.
  const auto* summarize = find_span(run.spans, "summarize", 0);
  std::size_t svd = 0, kmeans = 0;
  for (const auto& s : run.spans) {
    if (s.trace_id != 0) continue;
    if (s.name == "svd") {
      ++svd;
      EXPECT_EQ(s.parent_id, summarize->span_id);
    }
    if (s.name == "kmeans") {
      ++kmeans;
      EXPECT_EQ(s.parent_id, summarize->span_id);
    }
  }
  EXPECT_EQ(svd, 2u);  // both monitors report in epoch 0
  EXPECT_EQ(kmeans, 2u);

  // Every span carries the epoch's simulated close time, never wall clock.
  for (const auto& s : run.spans) {
    if (s.trace_id == 0) EXPECT_DOUBLE_EQ(s.sim_time, epoch->sim_time);
  }
}

#ifndef JAAL_TELEMETRY_DISABLED

TEST(TelemetryPipeline, MetricsAgreeWithControllerAccounting) {
  const DeploymentTrace run = run_deployment(1);
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& e : run.snapshot.entries) {
      if (e.name == name) return e.counter;
    }
    return 0;
  };
  EXPECT_EQ(counter("jaal_monitor_packets_observed_total"), run.packets);
  EXPECT_GT(counter("jaal_summarize_batches_total"), 0u);
  EXPECT_GT(counter("jaal_inference_questions_evaluated_total"), 0u);
  EXPECT_EQ(counter("jaal_monitor_packets_malformed_total"), 0u);
}

TEST(TelemetryPipeline, RuntimeStatsFoldIntoTheDeploymentRegistry) {
  telemetry::Telemetry tel;
  runtime::ThreadPool pool(2);
  pool.stats().bind(&tel.metrics);
  { runtime::StageTimer timer(&pool.stats(), "flush"); }
  pool.submit([] {}).wait();

  bool saw_stage = false, saw_tasks = false;
  for (const auto& e : tel.metrics.snapshot().entries) {
    if (e.name == "jaal_runtime_stage_ms{stage=\"flush\"}") {
      saw_stage = true;
      EXPECT_EQ(e.histogram.count, 1u);
    }
    if (e.name == "jaal_runtime_tasks_submitted_total") {
      saw_tasks = true;
      EXPECT_GE(e.counter, 1u);
    }
  }
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_tasks);

  // The classic snapshot view is reconstructed from the same registry.
  const runtime::RuntimeStatsSnapshot snap = pool.stats().snapshot();
  ASSERT_FALSE(snap.stages.empty());
  EXPECT_EQ(snap.stages[0].name, "flush");
  EXPECT_EQ(snap.stages[0].calls, 1u);
}

#endif  // JAAL_TELEMETRY_DISABLED

}  // namespace
}  // namespace jaal::core
