#include "netsim/replication.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::netsim {
namespace {

class ReplicationFixture : public ::testing::Test {
 protected:
  ReplicationFixture() : topo_(make_isp_topology(abovenet_profile(), 1)) {}

  ReplicationExperiment make_experiment(double demand_scale = 1.0,
                                        double engine_capacity = 2.0e6) {
    const auto monitors = topo_.default_monitor_sites(25);
    const auto demands =
        random_demands(topo_, 400, 8000.0 * demand_scale, 7);
    return ReplicationExperiment(topo_, monitors, monitors.front(), demands,
                                 engine_capacity);
  }

  Topology topo_;
};

TEST_F(ReplicationFixture, NoReplicationNoLossOnUncongestedNetwork) {
  const auto exp = make_experiment(0.2);
  const ReplicationResult r = exp.evaluate(0.0);
  EXPECT_DOUBLE_EQ(r.throughput_loss, 0.0);
  EXPECT_DOUBLE_EQ(r.detection_accuracy, 0.0);  // nothing was replicated
}

TEST_F(ReplicationFixture, ThroughputLossMonotoneInReplication) {
  const auto exp = make_experiment(2.0);
  double last = -1.0;
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const ReplicationResult r = exp.evaluate(f);
    EXPECT_GE(r.throughput_loss, last - 1e-9) << "fraction " << f;
    last = r.throughput_loss;
  }
}

TEST_F(ReplicationFixture, FullReplicationCausesSevereDegradation) {
  // Fig. 7's headline: copying everything collapses both throughput and
  // accuracy.  ISP-scale aggregate demand (base links at ~50% utilization)
  // plus full replication toward one engine congests the network.
  const auto exp = make_experiment(10.0, 2.0e7);
  const ReplicationResult baseline = exp.evaluate(0.0);
  const ReplicationResult r = exp.evaluate(1.0);
  EXPECT_GT(r.throughput_loss, baseline.throughput_loss + 0.1);
  EXPECT_LT(r.detection_accuracy, 0.6);
}

TEST_F(ReplicationFixture, AccuracyBoundedByReplicationFraction) {
  const auto exp = make_experiment(0.1, 1.0e9);
  // On an idle network with an infinite engine, accuracy == fraction.
  const ReplicationResult r = exp.evaluate(0.35);
  EXPECT_NEAR(r.detection_accuracy, 0.35, 1e-6);
  EXPECT_NEAR(r.copy_delivery_fraction, 1.0, 1e-9);
}

TEST_F(ReplicationFixture, EngineOverloadReducesProcessing) {
  const auto exp = make_experiment(1.0, 1.0);  // 1 pps engine: hopeless
  const ReplicationResult r = exp.evaluate(1.0);
  EXPECT_LT(r.engine_processing_fraction, 0.01);
}

TEST_F(ReplicationFixture, InvalidArgumentsRejected) {
  const auto exp = make_experiment();
  EXPECT_THROW((void)exp.evaluate(-0.1), std::invalid_argument);
  EXPECT_THROW((void)exp.evaluate(1.5), std::invalid_argument);
}

TEST_F(ReplicationFixture, RouterProcessingLossGrowsWithReplication) {
  const auto exp = make_experiment(1.0);
  double last = -1.0;
  for (double f : {0.0, 0.35, 0.7, 1.0}) {
    const ReplicationResult r = exp.evaluate(f);
    EXPECT_GE(r.router_throughput_loss, last - 1e-9) << "fraction " << f;
    EXPECT_GE(r.worst_router_demand_loss, r.router_throughput_loss - 1e-9);
    last = r.router_throughput_loss;
  }
  // No replication, no router overload.
  EXPECT_DOUBLE_EQ(exp.evaluate(0.0).router_throughput_loss, 0.0);
  // Routers are provisioned for kProvisionedReplication: at that level the
  // router channel stays lossless by construction.
  EXPECT_NEAR(exp.evaluate(ReplicationExperiment::kProvisionedReplication)
                  .router_throughput_loss,
              0.0, 1e-9);
}

TEST_F(ReplicationFixture, RejectsBadHeadroom) {
  const auto monitors = topo_.default_monitor_sites(5);
  const auto demands = random_demands(topo_, 20, 1000.0, 3);
  EXPECT_THROW(ReplicationExperiment(topo_, monitors, monitors.front(),
                                     demands, 1e6, 0.9),
               std::invalid_argument);
}

TEST_F(ReplicationFixture, MonitoredTrafficCoversDemandsOnMonitorPaths) {
  const auto exp = make_experiment();
  double total = 0.0;
  for (double pps : exp.monitored_pps()) {
    EXPECT_GE(pps, 0.0);
    total += pps;
  }
  EXPECT_GT(total, 0.0);
}

TEST(Replication, RandomDemandsRespectsParameters) {
  const Topology topo = make_isp_topology(exodus_profile(), 2);
  const auto demands = random_demands(topo, 100, 500.0, 3);
  EXPECT_EQ(demands.size(), 100u);
  double mean = 0.0;
  for (const Demand& d : demands) {
    EXPECT_NE(d.src, d.dst);
    mean += d.pps;
  }
  mean /= 100.0;
  EXPECT_NEAR(mean, 500.0, 200.0);  // exponential around the mean
}

TEST(Replication, ConstructorValidation) {
  const Topology topo = make_isp_topology(exodus_profile(), 2);
  const auto demands = random_demands(topo, 10, 100.0, 1);
  EXPECT_THROW(ReplicationExperiment(topo, {}, 0, demands, 1e6),
               std::invalid_argument);
  EXPECT_THROW(
      ReplicationExperiment(topo, {0}, 0, demands, 0.0),
      std::invalid_argument);
  EXPECT_THROW(ReplicationExperiment(topo, {0},
                                     static_cast<NodeId>(topo.node_count()),
                                     demands, 1e6),
               std::invalid_argument);
}

}  // namespace
}  // namespace jaal::netsim
