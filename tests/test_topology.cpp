#include "netsim/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace jaal::netsim {
namespace {

Topology triangle() {
  std::vector<Router> routers = {{0, RouterRole::kBackbone, 0},
                                 {1, RouterRole::kAggregation, 0},
                                 {2, RouterRole::kEdge, 0}};
  std::vector<LinkSpec> links = {{0, 1, 1e6}, {1, 2, 1e6}, {0, 2, 1e6}};
  return Topology("triangle", std::move(routers), std::move(links));
}

TEST(Topology, BasicAccessors) {
  const Topology t = triangle();
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 3u);
  EXPECT_EQ(t.neighbors(0).size(), 2u);
}

TEST(Topology, RejectsSelfLoop) {
  std::vector<Router> routers = {{0, RouterRole::kEdge, 0},
                                 {1, RouterRole::kEdge, 0}};
  EXPECT_THROW(Topology("bad", routers, {{0, 0, 1e6}, {0, 1, 1e6}}),
               std::invalid_argument);
}

TEST(Topology, RejectsOutOfRangeEndpoint) {
  std::vector<Router> routers = {{0, RouterRole::kEdge, 0}};
  EXPECT_THROW(Topology("bad", routers, {{0, 5, 1e6}}), std::invalid_argument);
}

TEST(Topology, RejectsDisconnected) {
  std::vector<Router> routers = {{0, RouterRole::kEdge, 0},
                                 {1, RouterRole::kEdge, 0},
                                 {2, RouterRole::kEdge, 0},
                                 {3, RouterRole::kEdge, 0}};
  EXPECT_THROW(Topology("bad", routers, {{0, 1, 1e6}, {2, 3, 1e6}}),
               std::invalid_argument);
}

TEST(Topology, ShortestPathTrivial) {
  const Topology t = triangle();
  EXPECT_EQ(t.shortest_path(1, 1), std::vector<NodeId>{1});
  EXPECT_EQ(t.shortest_path(0, 2), (std::vector<NodeId>{0, 2}));
}

TEST(Topology, ShortestPathOnChain) {
  std::vector<Router> routers;
  std::vector<LinkSpec> links;
  for (NodeId i = 0; i < 5; ++i) routers.push_back({i, RouterRole::kEdge, 0});
  for (NodeId i = 0; i + 1 < 5; ++i) links.push_back({i, i + 1, 1e6});
  const Topology chain("chain", routers, links);
  EXPECT_EQ(chain.shortest_path(0, 4), (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Topology, LinkBetween) {
  const Topology t = triangle();
  EXPECT_TRUE(t.link_between(0, 1).has_value());
  EXPECT_TRUE(t.link_between(1, 0).has_value());
  std::vector<Router> routers = {{0, RouterRole::kEdge, 0},
                                 {1, RouterRole::kEdge, 0},
                                 {2, RouterRole::kEdge, 0}};
  const Topology path("path", routers, {{0, 1, 1e6}, {1, 2, 1e6}});
  EXPECT_FALSE(path.link_between(0, 2).has_value());
}

TEST(IspGenerator, AbovenetMatchesPaperScale) {
  const Topology topo = make_isp_topology(abovenet_profile(), 1);
  EXPECT_EQ(topo.node_count(), 367u);  // "topology 1 has 367 routers"
  EXPECT_EQ(topo.name(), "abovenet");
}

TEST(IspGenerator, ExodusMatchesPaperScale) {
  const Topology topo = make_isp_topology(exodus_profile(), 1);
  EXPECT_EQ(topo.node_count(), 338u);  // "topology 2 has 338 routers"
}

TEST(IspGenerator, GeneratedGraphIsConnected) {
  // The Topology constructor throws on disconnection, so construction
  // succeeding is the check; try several seeds.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_NO_THROW((void)make_isp_topology(abovenet_profile(), seed));
  }
}

TEST(IspGenerator, AllRolesPresent) {
  const Topology topo = make_isp_topology(abovenet_profile(), 2);
  std::set<RouterRole> roles;
  for (const Router& r : topo.routers()) roles.insert(r.role);
  EXPECT_EQ(roles.size(), 3u);
  EXPECT_FALSE(topo.edge_nodes().empty());
}

TEST(IspGenerator, DeterministicForSeed) {
  const Topology a = make_isp_topology(exodus_profile(), 3);
  const Topology b = make_isp_topology(exodus_profile(), 3);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
  }
}

TEST(IspGenerator, PathsExistBetweenRandomEdgePairs) {
  const Topology topo = make_isp_topology(abovenet_profile(), 4);
  const auto edges = topo.edge_nodes();
  ASSERT_GE(edges.size(), 2u);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto path =
        topo.shortest_path(edges[i % edges.size()],
                           edges[(i * 7 + 3) % edges.size()]);
    EXPECT_FALSE(path.empty());
    // Consecutive path nodes must be adjacent.
    for (std::size_t j = 1; j < path.size(); ++j) {
      EXPECT_TRUE(topo.link_between(path[j - 1], path[j]).has_value());
    }
  }
}

TEST(IspGenerator, MonitorSitesAreHighDegreeNonEdge) {
  const Topology topo = make_isp_topology(abovenet_profile(), 5);
  const auto sites = topo.default_monitor_sites(25);
  EXPECT_EQ(sites.size(), 25u);
  for (NodeId site : sites) {
    EXPECT_NE(topo.routers()[site].role, RouterRole::kEdge);
  }
}

TEST(IspGenerator, RejectsDegenerateProfiles) {
  IspProfile p = abovenet_profile();
  p.pop_count = 2;
  EXPECT_THROW((void)make_isp_topology(p, 1), std::invalid_argument);
  IspProfile q = abovenet_profile();
  q.target_router_count = 10;
  EXPECT_THROW((void)make_isp_topology(q, 1), std::invalid_argument);
}

}  // namespace
}  // namespace jaal::netsim
