#include "inference/similarity.hpp"

#include <gtest/gtest.h>

namespace jaal::inference {
namespace {

using packet::FieldIndex;

/// Aggregate with two centroid populations: `near` rows exactly matching a
/// SYN-to-port-80 question and `far` rows matching nothing.
AggregatedSummary two_population_aggregate(std::size_t near, std::size_t far,
                                           std::uint64_t count_per_row) {
  AggregatedSummary agg;
  agg.centroids = linalg::Matrix(near + far, packet::kFieldCount);
  for (std::size_t i = 0; i < near + far; ++i) {
    auto row = agg.centroids.row(i);
    if (i < near) {
      row[packet::index(FieldIndex::kTcpDstPort)] = 80.0 / 65535.0;
      row[packet::index(FieldIndex::kTcpFlags)] = 2.0 / 63.0;
    } else {
      row[packet::index(FieldIndex::kTcpDstPort)] = 0.9;
      row[packet::index(FieldIndex::kTcpFlags)] = 16.0 / 63.0;
    }
    agg.counts.push_back(count_per_row);
    agg.origin.push_back(0);
    agg.local_index.push_back(i);
  }
  return agg;
}

rules::Question syn80_question(std::uint64_t tau_c) {
  rules::Question q;
  q.q.fill(rules::kWildcard);
  q.q[packet::index(FieldIndex::kTcpDstPort)] = 80.0 / 65535.0;
  q.q[packet::index(FieldIndex::kTcpFlags)] = 2.0 / 63.0;
  q.tau_c = tau_c;
  q.sid = 1;
  return q;
}

TEST(Similarity, MatchesOnlyNearCentroids) {
  const auto agg = two_population_aggregate(3, 5, 10);
  const auto res = estimate_similarity(syn80_question(1), agg, 0.01);
  EXPECT_TRUE(res.alert);
  EXPECT_EQ(res.matched_rows, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(res.matched_count, 30u);
}

TEST(Similarity, TauCGatesAlert) {
  const auto agg = two_population_aggregate(2, 2, 10);
  EXPECT_TRUE(estimate_similarity(syn80_question(20), agg, 0.01).alert);
  EXPECT_FALSE(estimate_similarity(syn80_question(21), agg, 0.01).alert);
}

TEST(Similarity, TauCOverride) {
  const auto agg = two_population_aggregate(1, 1, 10);
  const auto q = syn80_question(100);  // question says 100...
  EXPECT_TRUE(estimate_similarity(q, agg, 0.01, 5).alert);  // ...override 5
}

TEST(Similarity, LargeTauDMatchesEverything) {
  const auto agg = two_population_aggregate(2, 6, 1);
  const auto res = estimate_similarity(syn80_question(1), agg, 1.0);
  EXPECT_EQ(res.matched_rows.size(), 8u);
}

TEST(Similarity, ZeroTauDRequiresExactMatch) {
  const auto agg = two_population_aggregate(2, 6, 1);
  const auto res = estimate_similarity(syn80_question(1), agg, 0.0);
  EXPECT_EQ(res.matched_rows.size(), 2u);
}

TEST(Similarity, MatchedSetsNestAcrossThresholds) {
  // The feedback loop's case-4 impossibility rests on this property.
  const auto agg = two_population_aggregate(4, 4, 2);
  const auto strict = estimate_similarity(syn80_question(1), agg, 0.05);
  const auto loose = estimate_similarity(syn80_question(1), agg, 0.30);
  for (std::size_t row : strict.matched_rows) {
    EXPECT_TRUE(std::find(loose.matched_rows.begin(), loose.matched_rows.end(),
                          row) != loose.matched_rows.end());
  }
  EXPECT_GE(loose.matched_count, strict.matched_count);
}

TEST(Similarity, EmptyAggregateNeverAlerts) {
  AggregatedSummary agg;
  const auto res = estimate_similarity(syn80_question(1), agg, 1.0);
  EXPECT_FALSE(res.alert);
  EXPECT_TRUE(res.matched_rows.empty());
}

}  // namespace
}  // namespace jaal::inference
