#include "core/assignment_service.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::core {
namespace {

std::vector<assign::MonitorGroup> two_groups() {
  return {assign::MonitorGroup{{0, 1}}, assign::MonitorGroup{{1, 2, 3}}};
}

TEST(AssignmentService, ValidatesConstruction) {
  EXPECT_THROW(AssignmentService({}, 4), std::invalid_argument);
  EXPECT_THROW(AssignmentService(two_groups(), 0), std::invalid_argument);
  EXPECT_THROW(AssignmentService({assign::MonitorGroup{{}}}, 4),
               std::invalid_argument);
  EXPECT_THROW(AssignmentService({assign::MonitorGroup{{9}}}, 4),
               std::invalid_argument);
}

TEST(AssignmentService, AssignsLeastLoadedInGroup) {
  AssignmentService service(two_groups(), 4);
  service.on_load_update({0, 500.0, 0});
  service.on_load_update({1, 100.0, 0});
  EXPECT_EQ(service.assign(0, 1.0), 1u);  // 100 < 500
  service.on_load_update({1, 900.0, 0});
  EXPECT_EQ(service.assign(0, 1.0), 0u);  // roles flipped
}

TEST(AssignmentService, OptimisticIncrementsPreventHerding) {
  // All monitors report zero; assigning many flows before the next report
  // must spread them, not pile everything on monitor 1.
  AssignmentService service(two_groups(), 4);
  std::vector<std::size_t> hits(4, 0);
  for (int i = 0; i < 300; ++i) ++hits[service.assign(1, 10.0)];
  EXPECT_EQ(hits[0], 0u);  // not in group 1
  EXPECT_EQ(hits[1], 100u);
  EXPECT_EQ(hits[2], 100u);
  EXPECT_EQ(hits[3], 100u);
}

TEST(AssignmentService, LoadReportSupersedesOptimisticGuesses) {
  AssignmentService service(two_groups(), 4);
  (void)service.assign(0, 1000.0);  // optimistic bump on some monitor
  const assign::MonitorIndex bumped =
      service.visible_load(0) > 0.0 ? 0u : 1u;
  EXPECT_GT(service.visible_load(bumped), 0.0);
  service.on_load_update(
      {static_cast<summarize::MonitorId>(bumped), 42.0, 0});
  EXPECT_DOUBLE_EQ(service.visible_load(bumped), 42.0);
}

TEST(AssignmentService, TracksAssignments) {
  AssignmentService service(two_groups(), 4);
  for (int i = 0; i < 7; ++i) (void)service.assign(i % 2, 1.0);
  EXPECT_EQ(service.assignments(), 7u);
}

TEST(AssignmentService, RejectsBadIndices) {
  AssignmentService service(two_groups(), 4);
  EXPECT_THROW((void)service.assign(5, 1.0), std::out_of_range);
  EXPECT_THROW((void)service.visible_load(9), std::out_of_range);
  EXPECT_THROW(service.on_load_update({9, 1.0, 0}), std::out_of_range);
}

TEST(AssignmentService, DrivenByDecodedProtoFrames) {
  // The wire path: LoadUpdate frames steer assignment decisions.
  AssignmentService service(two_groups(), 4);
  proto::FrameReader rx;
  rx.feed(proto::encode(proto::Message{proto::LoadUpdate{1, 800.0, 5}}));
  rx.feed(proto::encode(proto::Message{proto::LoadUpdate{2, 50.0, 1}}));
  rx.feed(proto::encode(proto::Message{proto::LoadUpdate{3, 400.0, 2}}));
  while (auto msg = rx.next()) {
    service.on_load_update(std::get<proto::LoadUpdate>(*msg));
  }
  EXPECT_EQ(service.assign(1, 1.0), 2u);  // lightest of {1, 2, 3}
}

}  // namespace
}  // namespace jaal::core
