#include "netsim/latency.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::netsim {
namespace {

class LatencyFixture : public ::testing::Test {
 protected:
  LatencyFixture() : topo_(make_isp_topology(abovenet_profile(), 1)) {}
  Topology topo_;
};

TEST_F(LatencyFixture, SelfDeliveryIsSerializationOnly) {
  const LatencyModel model;
  EXPECT_DOUBLE_EQ(delivery_latency(topo_, 0, 0, 10000, model),
                   model.serialization_overhead_s);
}

TEST_F(LatencyFixture, LatencyGrowsWithPayload) {
  const auto monitors = topo_.default_monitor_sites(2);
  const double small = delivery_latency(topo_, monitors[0], monitors[1], 1000);
  const double large =
      delivery_latency(topo_, monitors[0], monitors[1], 100000);
  EXPECT_GT(large, small);
}

TEST_F(LatencyFixture, LatencyGrowsWithPathLength) {
  // Pick the farthest edge pair reachable and compare against neighbors.
  const auto edges = topo_.edge_nodes();
  const auto neighbors = topo_.neighbors(edges[0]);
  const double one_hop = delivery_latency(topo_, edges[0], neighbors[0], 5000);
  // Any edge node in a different PoP is several hops away.
  NodeId far = edges[0];
  for (NodeId e : edges) {
    if (topo_.routers()[e].pop != topo_.routers()[edges[0]].pop) {
      far = e;
      break;
    }
  }
  ASSERT_NE(far, edges[0]);
  EXPECT_GT(delivery_latency(topo_, edges[0], far, 5000), one_hop);
}

TEST_F(LatencyFixture, CollectionWaitsForWorstMonitor) {
  const auto monitors = topo_.default_monitor_sites(25);
  const auto collection =
      collection_latency(topo_, monitors, monitors.front(), 11312);
  EXPECT_EQ(collection.per_monitor.size(), 25u);
  double max_seen = 0.0;
  for (double l : collection.per_monitor) {
    EXPECT_GT(l, 0.0);
    max_seen = std::max(max_seen, l);
  }
  EXPECT_DOUBLE_EQ(collection.worst, max_seen);
  EXPECT_LE(collection.mean, collection.worst);
}

TEST_F(LatencyFixture, PaperDetectionBudgetHolds) {
  // The Mirai case study claims detection within 3 s: a 2 s epoch plus
  // collection and inference.  With r=12/k=200 summaries (11 KB) over the
  // Abovenet-like map, collection is tens of milliseconds — comfortably
  // inside the budget.
  const auto monitors = topo_.default_monitor_sites(25);
  const auto collection =
      collection_latency(topo_, monitors, monitors.front(), 11312);
  const double total =
      detection_latency_estimate(2.0, collection, /*inference=*/0.05);
  EXPECT_LT(collection.worst, 0.5);
  EXPECT_LT(total, 3.0);
}

TEST_F(LatencyFixture, ValidatesInput) {
  EXPECT_THROW(
      (void)collection_latency(topo_, {}, 0, 1000),
      std::invalid_argument);
  EXPECT_THROW(
      (void)delivery_latency(topo_, 0,
                             static_cast<NodeId>(topo_.node_count()), 10),
      std::out_of_range);
}

}  // namespace
}  // namespace jaal::netsim
