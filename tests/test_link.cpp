// LinkQueue: serialization + propagation timing, tail drops keyed by
// simulated time, high-water marks, and labeled telemetry counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netsim/link.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::netsim {
namespace {

TEST(LinkQueue, RejectsBadConfig) {
  EventQueue events;
  LinkConfig bad_rate;
  bad_rate.rate_bytes_per_s = 0.0;
  EXPECT_THROW(LinkQueue(events, bad_rate), std::invalid_argument);
  LinkConfig bad_queue;
  bad_queue.queue_limit_bytes = 0;
  EXPECT_THROW(LinkQueue(events, bad_queue), std::invalid_argument);
}

TEST(LinkQueue, DeliversAfterSerializationAndPropagation) {
  EventQueue events;
  LinkConfig cfg;
  cfg.rate_bytes_per_s = 1000.0;  // 1 byte per ms
  cfg.propagation_s = 0.5;
  LinkQueue link(events, cfg);
  std::vector<std::pair<std::size_t, double>> delivered;
  link.set_deliver([&](std::size_t bytes, double now) {
    delivered.emplace_back(bytes, now);
  });

  EXPECT_TRUE(link.offer(100));  // serializes [0, 0.1], arrives 0.6
  EXPECT_TRUE(link.offer(200));  // serializes [0.1, 0.3], arrives 0.8
  (void)events.run_until(10.0);

  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].first, 100u);
  EXPECT_DOUBLE_EQ(delivered[0].second, 0.6);
  EXPECT_EQ(delivered[1].first, 200u);
  EXPECT_DOUBLE_EQ(delivered[1].second, 0.8);
  EXPECT_EQ(link.messages_forwarded(), 2u);
  EXPECT_EQ(link.bytes_forwarded(), 300u);
  EXPECT_EQ(link.drops(), 0u);
  EXPECT_EQ(link.queue_depth_bytes(), 0u);
}

TEST(LinkQueue, TailDropsWhenQueueIsFull) {
  EventQueue events;
  LinkConfig cfg;
  cfg.rate_bytes_per_s = 100.0;
  cfg.queue_limit_bytes = 250;
  cfg.propagation_s = 0.0;
  LinkQueue link(events, cfg);

  // The message in service still occupies queue bytes until it finishes
  // serializing.
  EXPECT_TRUE(link.offer(100));   // qb = 100
  EXPECT_TRUE(link.offer(100));   // qb = 200
  EXPECT_FALSE(link.offer(100));  // 200 + 100 > 250: dropped
  EXPECT_TRUE(link.offer(50));    // 200 + 50 <= 250: fits
  EXPECT_EQ(link.queue_high_water_bytes(), 250u);

  (void)events.run_until(100.0);
  EXPECT_EQ(link.messages_forwarded(), 3u);
  EXPECT_EQ(link.bytes_forwarded(), 250u);
  EXPECT_EQ(link.drops(), 1u);
  EXPECT_EQ(link.dropped_bytes(), 100u);
  ASSERT_EQ(link.drop_log().size(), 1u);
  EXPECT_DOUBLE_EQ(link.drop_log()[0].sim_time, 0.0);
  EXPECT_EQ(link.drop_log()[0].bytes, 100u);
}

TEST(LinkQueue, DropLogIsKeyedBySimulatedTime) {
  // Two runs of the same schedule produce identical drop logs — the netsim
  // determinism rule (sim-time keyed, never wall clock).
  auto run_once = [] {
    EventQueue events;
    LinkConfig cfg;
    cfg.rate_bytes_per_s = 1000.0;
    cfg.queue_limit_bytes = 100;
    cfg.propagation_s = 0.0;
    LinkQueue link(events, cfg);
    for (int burst = 0; burst < 3; ++burst) {
      events.schedule(0.5 * burst, [&link] {
        (void)link.offer(80);
        (void)link.offer(80);  // 160 > 100: overflows
        (void)link.offer(80);  // ditto
      });
    }
    (void)events.run_until(10.0);
    return link.drop_log();
  };
  const std::vector<LinkDrop> a = run_once();
  const std::vector<LinkDrop> b = run_once();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].sim_time, b[i].sim_time);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

#ifndef JAAL_TELEMETRY_DISABLED
TEST(LinkQueue, PublishesLabeledTelemetry) {
  telemetry::Telemetry tel;
  EventQueue events;
  LinkConfig cfg;
  cfg.name = "m0-ctrl";
  cfg.rate_bytes_per_s = 1000.0;
  cfg.queue_limit_bytes = 100;
  cfg.propagation_s = 0.0;
  LinkQueue link(events, cfg);
  link.set_telemetry(&tel);

  EXPECT_TRUE(link.offer(60));   // qb = 60
  EXPECT_TRUE(link.offer(30));   // qb = 90
  EXPECT_FALSE(link.offer(90));  // 90 + 90 > 100: dropped
  (void)events.run_until(10.0);

  const telemetry::MetricsSnapshot snap = tel.metrics.snapshot();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& e : snap.entries) {
      if (e.name == name) return e.counter;
    }
    ADD_FAILURE() << "missing metric " << name;
    return 0;
  };
  EXPECT_EQ(
      counter("jaal_netsim_link_messages_forwarded_total{link=\"m0-ctrl\"}"),
      2u);
  EXPECT_EQ(counter("jaal_netsim_link_bytes_forwarded_total{link=\"m0-ctrl\"}"),
            90u);
  EXPECT_EQ(counter("jaal_netsim_link_drops_total{link=\"m0-ctrl\"}"), 1u);
  EXPECT_EQ(counter("jaal_netsim_link_dropped_bytes_total{link=\"m0-ctrl\"}"),
            90u);
  bool found_gauge = false;
  for (const auto& e : snap.entries) {
    if (e.name ==
        "jaal_netsim_link_queue_depth_high_water_bytes{link=\"m0-ctrl\"}") {
      found_gauge = true;
      EXPECT_EQ(e.gauge, 90);
    }
  }
  EXPECT_TRUE(found_gauge);
}
#endif  // JAAL_TELEMETRY_DISABLED

}  // namespace
}  // namespace jaal::netsim
