#include "assign/assigner.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace jaal::assign {
namespace {

TEST(GreedyAssigner, PicksLeastLoaded) {
  GreedyAssigner greedy;
  MonitorGroup group{{0, 2, 4}};
  const std::vector<double> loads = {5.0, 0.0, 1.0, 0.0, 3.0};
  EXPECT_EQ(greedy.choose(group, loads, 1.0), 2u);
}

TEST(RandomAssigner, StaysInsideGroup) {
  RandomAssigner random(1);
  MonitorGroup group{{1, 3}};
  const std::vector<double> loads(5, 0.0);
  for (int i = 0; i < 100; ++i) {
    const MonitorIndex m = random.choose(group, loads, 1.0);
    EXPECT_TRUE(m == 1 || m == 3);
  }
}

TEST(RobinHood, PrefersPoorMachines) {
  RobinHoodAssigner rh(4);
  MonitorGroup group{{0, 1}};
  // Machine 0 heavily loaded, machine 1 idle.
  const std::vector<double> loads = {100.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(rh.choose(group, loads, 1.0), 1u);
}

TEST(Workload, GeneratorRespectsConfig) {
  WorkloadConfig cfg;
  cfg.flow_count = 500;
  cfg.group_count = 8;
  cfg.monitor_count = 10;
  const Workload w = make_workload(cfg);
  EXPECT_EQ(w.flows.size(), 500u);
  EXPECT_EQ(w.groups.size(), 8u);
  for (const auto& g : w.groups) {
    EXPECT_GE(g.monitors.size(), 2u);
    EXPECT_LE(g.monitors.size(), 5u);
    for (MonitorIndex m : g.monitors) EXPECT_LT(m, 10u);
  }
  for (const auto& f : w.flows) {
    EXPECT_GT(f.weight, 0.0);
    EXPECT_GT(f.duration, 0.0);
    EXPECT_LT(f.group, 8u);
  }
}

TEST(Simulation, GroupLoadIsMeanOfMemberMonitors) {
  const Workload w = make_workload({});
  GreedyAssigner greedy;
  const AssignmentOutcome out =
      simulate_assignment(greedy, w.flows, w.groups, 25, 2.0);
  ASSERT_EQ(out.group_avg_load.size(), w.groups.size());
  for (std::size_t g = 0; g < w.groups.size(); ++g) {
    double sum = 0.0;
    for (MonitorIndex m : w.groups[g].monitors) sum += out.time_avg_load[m];
    EXPECT_NEAR(out.group_avg_load[g],
                sum / static_cast<double>(w.groups[g].monitors.size()),
                1e-9);
  }
  const double monitor_total = std::accumulate(out.time_avg_load.begin(),
                                               out.time_avg_load.end(), 0.0);
  EXPECT_GT(monitor_total, 0.0);
}

TEST(Simulation, GreedyBeatsRandomOnMaxLoad) {
  const Workload w = make_workload({});
  GreedyAssigner greedy;
  RandomAssigner random(2);
  const auto g = simulate_assignment(greedy, w.flows, w.groups, 25, 2.0);
  const auto r = simulate_assignment(random, w.flows, w.groups, 25, 2.0);
  EXPECT_LT(g.max_time_avg_load, r.max_time_avg_load * 1.05);
}

TEST(Simulation, GreedyCloseToRobinHood) {
  // §8.2: greedy mirrors Robin Hood within ~10-15%.
  const Workload w = make_workload({});
  GreedyAssigner greedy;
  RobinHoodAssigner rh(25);
  const auto g = simulate_assignment(greedy, w.flows, w.groups, 25, 2.0);
  const auto r = simulate_assignment(rh, w.flows, w.groups, 25, 0.0);
  EXPECT_LT(g.max_time_avg_load, r.max_time_avg_load * 1.35);
}

TEST(Simulation, FreshLoadsBeatStaleLoads) {
  const Workload w = make_workload({});
  GreedyAssigner a, b;
  const auto fresh = simulate_assignment(a, w.flows, w.groups, 25, 0.0);
  const auto stale = simulate_assignment(b, w.flows, w.groups, 25, 30.0);
  EXPECT_LE(fresh.max_time_avg_load, stale.max_time_avg_load * 1.02);
}

TEST(Simulation, PeakLoadAtLeastLargestFlow) {
  const Workload w = make_workload({});
  double max_weight = 0.0;
  for (const auto& f : w.flows) max_weight = std::max(max_weight, f.weight);
  GreedyAssigner greedy;
  const auto out = simulate_assignment(greedy, w.flows, w.groups, 25, 2.0);
  EXPECT_GE(out.peak_load, max_weight);
}

TEST(Simulation, ValidatesInput) {
  GreedyAssigner greedy;
  std::vector<FlowEvent> flows = {{0.0, 1.0, 1.0, 0}};
  EXPECT_THROW(
      (void)simulate_assignment(greedy, flows, {MonitorGroup{{}}}, 4, 2.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)simulate_assignment(greedy, flows, {MonitorGroup{{9}}}, 4, 2.0),
      std::invalid_argument);
  std::vector<FlowEvent> bad_group = {{0.0, 1.0, 1.0, 7}};
  EXPECT_THROW((void)simulate_assignment(greedy, bad_group,
                                         {MonitorGroup{{0}}}, 4, 2.0),
               std::invalid_argument);
}

TEST(Simulation, SingleFlowAccounting) {
  GreedyAssigner greedy;
  std::vector<FlowEvent> flows = {{0.0, 10.0, 5.0, 0}};
  const auto out = simulate_assignment(greedy, flows,
                                       {MonitorGroup{{0, 1}}}, 2, 1.0);
  // One flow of weight 5 active for the whole horizon.
  EXPECT_NEAR(out.time_avg_load[0] + out.time_avg_load[1], 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.peak_load, 5.0);
}

}  // namespace
}  // namespace jaal::assign
