// Crash-safe restart of a persisted deployment: a controller killed
// mid-epoch reopens its store, resumes at the epoch after the last commit,
// and — fed the same packets — produces byte-identical alerts to a run that
// never died.  The determinism contract behind it is Monitor::begin_epoch
// (per-epoch RNG streams) plus the store's commit protocol.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "inference/alert_json.hpp"
#include "store/replay.hpp"
#include "store/store.hpp"
#include "trace/background.hpp"

namespace jaal::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("jaal_restart_test_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

JaalConfig restart_config(const std::string& dir) {
  JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  // Low floor so every monitor flushes every epoch: after any epoch close
  // all buffers are empty, which is what makes a restarted (cold) monitor
  // equivalent to a running one.
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.monitor_count = 3;
  cfg.epoch_seconds = 0.04;
  cfg.engine.default_thresholds = {0.02, 0.02};
  cfg.engine.tau_c_scale = 1.8;
  // A restarted health tracker is cold; disable drift so the caution
  // signal cannot differ between the runs under comparison.
  cfg.observe.drift = false;
  cfg.store_dir = dir;
  return cfg;
}

std::vector<rules::Rule> ruleset() {
  return rules::parse_rules(rules::default_ruleset_text(),
                            evaluation_rule_vars());
}

/// The same packet stream for every run: pre-generated and sliced by epoch
/// so an interrupted run and its resumption see exactly the packets the
/// uninterrupted run saw.
std::vector<std::vector<packet::PacketRecord>> epoch_slices(
    const JaalConfig& cfg, std::size_t epochs) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 21);
  std::vector<std::vector<packet::PacketRecord>> slices(epochs);
  const double horizon = cfg.epoch_seconds * static_cast<double>(epochs);
  while (gen.peek_time() < horizon) {
    const packet::PacketRecord pkt = gen.next();
    const auto e =
        static_cast<std::size_t>(pkt.timestamp / cfg.epoch_seconds);
    if (e >= epochs) break;
    slices[e].push_back(pkt);
  }
  return slices;
}

std::vector<std::string> alert_lines(const std::vector<EpochResult>& epochs) {
  std::vector<std::string> lines;
  for (const auto& e : epochs) {
    for (const auto& a : e.alerts) {
      lines.push_back(inference::alert_to_json(a, e.end_time));
    }
  }
  return lines;
}

/// Feeds epochs [from, to) of the pre-sliced stream.
std::vector<EpochResult> drive(
    JaalController& controller, const JaalConfig& cfg,
    const std::vector<std::vector<packet::PacketRecord>>& slices,
    std::size_t from, std::size_t to) {
  std::vector<EpochResult> out;
  for (std::size_t e = from; e < to; ++e) {
    for (const auto& pkt : slices[e]) controller.ingest(pkt);
    out.push_back(
        controller.close_epoch(cfg.epoch_seconds *
                               static_cast<double>(e + 1)));
  }
  return out;
}

TEST(StoreRestart, ResumesAfterLastCommittedEpoch) {
  constexpr std::size_t kEpochs = 8;
  constexpr std::size_t kCrashAt = 4;  // dies while epoch 4 is open
  TempDir dir("resume");
  const JaalConfig cfg = restart_config(dir.str());
  const auto slices = epoch_slices(cfg, kEpochs);

  // Reference: one controller, never interrupted.
  TempDir ref_dir("resume_ref");
  std::vector<EpochResult> reference;
  {
    JaalConfig ref_cfg = restart_config(ref_dir.str());
    JaalController controller(ref_cfg, ruleset());
    reference = drive(controller, ref_cfg, slices, 0, kEpochs);
  }

  // Interrupted run: closes epochs 0..kCrashAt-1, ingests part of epoch
  // kCrashAt, then is destroyed without closing it (the half-epoch's
  // packets die with the monitors' buffers — nothing of it was committed).
  {
    JaalController controller(cfg, ruleset());
    (void)drive(controller, cfg, slices, 0, kCrashAt);
    for (std::size_t i = 0; i < slices[kCrashAt].size() / 2; ++i) {
      controller.ingest(slices[kCrashAt][i]);
    }
    ASSERT_FALSE(controller.store()->failed());
  }

  // Restart: the store hands back the resume point; the upstream replays
  // the whole crash epoch (it was never acknowledged).
  JaalController resumed(cfg, ruleset());
  ASSERT_EQ(resumed.next_epoch(), kCrashAt);
  const auto tail = drive(resumed, cfg, slices, kCrashAt, kEpochs);

  // Every resumed epoch is byte-identical to the uninterrupted run.
  ASSERT_EQ(tail.size(), kEpochs - kCrashAt);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const EpochResult& got = tail[i];
    const EpochResult& want = reference[kCrashAt + i];
    EXPECT_EQ(got.end_time, want.end_time);
    EXPECT_EQ(got.packets, want.packets);
    ASSERT_EQ(got.alerts.size(), want.alerts.size()) << "epoch " << i;
    for (std::size_t j = 0; j < got.alerts.size(); ++j) {
      EXPECT_EQ(inference::alert_to_json(got.alerts[j], got.end_time),
                inference::alert_to_json(want.alerts[j], want.end_time))
          << "epoch " << kCrashAt + i << " alert " << j;
    }
  }

  // The combined store now holds a contiguous committed history 0..7.
  store::DeploymentStore reader({dir.str(), cfg.store_epochs_per_shard},
                                /*writable=*/false);
  std::vector<std::uint64_t> committed;
  reader.each_epoch_meta([&](const store::EpochMeta& m) {
    committed.push_back(m.epoch);
    return true;
  });
  ASSERT_EQ(committed.size(), kEpochs);
  for (std::size_t e = 0; e < kEpochs; ++e) EXPECT_EQ(committed[e], e);

  // And its alert log equals the uninterrupted run's, line for line.
  std::vector<std::string> stored;
  reader.each_alert_line(
      [&](std::uint64_t, std::uint32_t, std::string_view line) {
        stored.emplace_back(line);
        return true;
      });
  EXPECT_EQ(stored, alert_lines(reference));
}

TEST(StoreRestart, TornTailIsHealedBeforeResuming) {
  constexpr std::size_t kEpochs = 6;
  constexpr std::size_t kCrashAt = 3;
  TempDir dir("torn");
  const JaalConfig cfg = restart_config(dir.str());
  const auto slices = epoch_slices(cfg, kEpochs);
  {
    JaalController controller(cfg, ruleset());
    (void)drive(controller, cfg, slices, 0, kCrashAt);
  }
  // Simulate a crash mid-append: garbage on the summaries tail shard.
  store::TimeShardLog probe({dir.str(), "summaries",
                             cfg.store_epochs_per_shard},
                            /*writable=*/false);
  const auto paths = probe.shard_paths();
  ASSERT_FALSE(paths.empty());
  {
    std::ofstream f(paths.back(), std::ios::binary | std::ios::app);
    f << "interrupted write";
  }

  JaalController resumed(cfg, ruleset());
  ASSERT_NE(resumed.store(), nullptr);
  EXPECT_GT(resumed.store()->torn_bytes_truncated(), 0u);
  EXPECT_EQ(resumed.next_epoch(), kCrashAt);
  (void)drive(resumed, cfg, slices, kCrashAt, kEpochs);

  store::DeploymentStore reader({dir.str(), cfg.store_epochs_per_shard},
                                /*writable=*/false);
  std::vector<std::uint64_t> committed;
  reader.each_epoch_meta([&](const store::EpochMeta& m) {
    committed.push_back(m.epoch);
    return true;
  });
  ASSERT_EQ(committed.size(), kEpochs);
  for (std::size_t e = 0; e < kEpochs; ++e) EXPECT_EQ(committed[e], e);
}

TEST(StoreRestart, FreshDirectoryStartsAtEpochZero) {
  TempDir dir("fresh");
  const JaalConfig cfg = restart_config(dir.str());
  JaalController controller(cfg, ruleset());
  EXPECT_EQ(controller.next_epoch(), 0u);
  ASSERT_NE(controller.store(), nullptr);
  EXPECT_FALSE(controller.store()->last_committed_epoch().has_value());
}

}  // namespace
}  // namespace jaal::core
