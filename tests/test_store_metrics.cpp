// The store's operational records (kMetrics / kEvents): codec round trips
// and determinism, the commit-protocol guarantees (uncommitted epochs roll
// back on writer reopen), point queries, and the version-refusal policy for
// payloads written by an incompatible build.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/flat_record.hpp"
#include "store/flat_timeshard.hpp"
#include "store/metrics_codec.hpp"
#include "store/store.hpp"
#include "telemetry/export.hpp"

namespace jaal::store {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("jaal_store_metrics_test_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

telemetry::MetricsSnapshot::Entry counter_entry(const std::string& name,
                                                std::uint64_t value) {
  telemetry::MetricsSnapshot::Entry e;
  e.name = name;
  e.kind = telemetry::MetricKind::kCounter;
  e.counter = value;
  return e;
}

telemetry::MetricsSnapshot::Entry gauge_entry(const std::string& name,
                                              std::int64_t value) {
  telemetry::MetricsSnapshot::Entry e;
  e.name = name;
  e.kind = telemetry::MetricKind::kGauge;
  e.gauge = value;
  return e;
}

telemetry::MetricsSnapshot::Entry histogram_entry(const std::string& name,
                                                  std::uint64_t count,
                                                  double sum) {
  telemetry::MetricsSnapshot::Entry e;
  e.name = name;
  e.kind = telemetry::MetricKind::kHistogram;
  e.histogram.count = count;
  e.histogram.sum = sum;
  e.histogram.max = sum;
  e.histogram.buckets.assign(telemetry::Histogram::kBucketCount, 0);
  if (count > 0) e.histogram.buckets[3] = count;
  return e;
}

telemetry::MetricsSnapshot delta_for_epoch(std::uint64_t epoch) {
  telemetry::MetricsSnapshot s;
  s.entries.push_back(counter_entry("jaal_packets_observed_total",
                                    1000 + epoch * 17));
  s.entries.push_back(gauge_entry("jaal_epoch_current",
                                  static_cast<std::int64_t>(epoch)));
  s.entries.push_back(histogram_entry("jaal_batch_packets", 4 + epoch,
                                      0.5 * static_cast<double>(epoch + 1)));
  return s;
}

std::vector<observe::FlightEvent> events_for_epoch(std::uint64_t epoch) {
  std::vector<observe::FlightEvent> out;
  observe::FlightEvent fid;
  fid.seq = epoch * 2;
  fid.epoch = epoch;
  fid.kind = observe::FlightEventKind::kFidelity;
  fid.actor = 0;
  fid.a = 0.999;
  fid.b = 0.0007;
  fid.c = 0.003;
  fid.u[0] = 2900 + epoch;
  out.push_back(fid);
  observe::FlightEvent close;
  close.seq = epoch * 2 + 1;
  close.epoch = epoch;
  close.kind = observe::FlightEventKind::kEpochClose;
  close.actor = 3;
  close.a = 1.0;
  close.c = 2.0;
  out.push_back(close);
  return out;
}

EpochMeta meta_for_epoch(std::uint64_t epoch) {
  EpochMeta m;
  m.epoch = epoch;
  m.end_time = static_cast<double>(epoch + 1);
  m.packets = 2000 + epoch;
  m.report_fraction = 1.0;
  return m;
}

bool snapshots_equal(const telemetry::MetricsSnapshot& a,
                     const telemetry::MetricsSnapshot& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const auto& x = a.entries[i];
    const auto& y = b.entries[i];
    if (x.name != y.name || x.kind != y.kind || x.counter != y.counter ||
        x.gauge != y.gauge || x.histogram.count != y.histogram.count ||
        x.histogram.sum != y.histogram.sum ||
        x.histogram.buckets != y.histogram.buckets) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------------ codec

TEST(MetricsCodec, RoundTripsSortedByName) {
  telemetry::MetricsSnapshot s;
  // Deliberately out of name order: the codec must canonicalize.
  s.entries.push_back(gauge_entry("zeta_gauge", -7));
  s.entries.push_back(counter_entry("alpha_total", 42));
  s.entries.push_back(histogram_entry("mid_histogram", 3, 1.25));
  const auto bytes = encode_metrics_delta(s);
  const auto back = decode_metrics_delta(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->entries.size(), 3u);
  EXPECT_EQ(back->entries[0].name, "alpha_total");
  EXPECT_EQ(back->entries[0].counter, 42u);
  EXPECT_EQ(back->entries[1].name, "mid_histogram");
  EXPECT_EQ(back->entries[1].histogram.count, 3u);
  EXPECT_EQ(back->entries[1].histogram.sum, 1.25);
  EXPECT_EQ(back->entries[2].name, "zeta_gauge");
  EXPECT_EQ(back->entries[2].gauge, -7);

  // Same content in a different order encodes to identical bytes.
  telemetry::MetricsSnapshot shuffled;
  shuffled.entries.push_back(s.entries[2]);
  shuffled.entries.push_back(s.entries[0]);
  shuffled.entries.push_back(s.entries[1]);
  EXPECT_EQ(encode_metrics_delta(shuffled), bytes);
}

TEST(MetricsCodec, ElidesWallClockAndZeroDeltas) {
  telemetry::MetricsSnapshot s;
  s.entries.push_back(counter_entry("jaal_alerts_raised_total", 0));
  s.entries.push_back(counter_entry("jaal_packets_observed_total", 5));
  s.entries.push_back(histogram_entry("jaal_stage_observe_ms", 9, 3.0));
  s.entries.push_back(counter_entry("jaal_runtime_pool_tasks_total", 11));
  s.entries.push_back(gauge_entry("jaal_epoch_current", 0));
  const auto back = decode_metrics_delta(encode_metrics_delta(s));
  ASSERT_TRUE(back.has_value());
  // Wall-clock ("_ms", jaal_runtime_) and zero counter deltas are dropped;
  // a zero gauge is an observation and survives.
  ASSERT_EQ(back->entries.size(), 2u);
  EXPECT_EQ(back->entries[0].name, "jaal_epoch_current");
  EXPECT_EQ(back->entries[1].name, "jaal_packets_observed_total");
  EXPECT_TRUE(telemetry::is_wall_clock_metric("jaal_stage_observe_ms"));
  EXPECT_TRUE(
      telemetry::is_wall_clock_metric("jaal_runtime_pool_tasks_total"));
}

TEST(MetricsCodec, FlightEventsRoundTripBitExact) {
  const auto events = events_for_epoch(6);
  const auto back = decode_flight_events(encode_flight_events(events));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*back)[i].seq, events[i].seq);
    EXPECT_EQ((*back)[i].epoch, events[i].epoch);
    EXPECT_EQ((*back)[i].kind, events[i].kind);
    EXPECT_EQ((*back)[i].actor, events[i].actor);
    EXPECT_EQ((*back)[i].a, events[i].a);
    EXPECT_EQ((*back)[i].c, events[i].c);
    for (int j = 0; j < 6; ++j) EXPECT_EQ((*back)[i].u[j], events[i].u[j]);
  }
}

TEST(MetricsCodec, RefusesUnknownMagicAndVersion) {
  auto bytes = encode_metrics_delta(delta_for_epoch(0));
  ASSERT_GE(bytes.size(), 2u);
  auto wrong_version = bytes;
  wrong_version[1] = 99;
  EXPECT_FALSE(decode_metrics_delta(wrong_version).has_value());
  auto wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(decode_metrics_delta(wrong_magic).has_value());
  auto ev = encode_flight_events(events_for_epoch(0));
  ev[1] = 99;
  EXPECT_FALSE(decode_flight_events(ev).has_value());
}

// ------------------------------------------------------- store round trip

TEST(StoreMetrics, ReopenRoundTripsMetricsAndEvents) {
  TempDir dir("roundtrip");
  constexpr std::uint64_t kEpochs = 5;
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      store.put_metrics(e, delta_for_epoch(e));
      store.put_events(e, events_for_epoch(e));
      store.commit_epoch(meta_for_epoch(e));
    }
  }
  DeploymentStore reader({dir.str(), 64}, /*writable=*/false);
  ASSERT_TRUE(reader.last_committed_epoch().has_value());
  EXPECT_EQ(*reader.last_committed_epoch(), kEpochs - 1);
  std::uint64_t next = 0;
  reader.each_metrics_delta(
      [&](std::uint64_t epoch, const telemetry::MetricsSnapshot& delta) {
        EXPECT_EQ(epoch, next);
        // The codec canonicalizes by name; rebuild the expectation the
        // same way for a structural comparison.
        const auto expected = decode_metrics_delta(
            encode_metrics_delta(delta_for_epoch(epoch)));
        EXPECT_TRUE(expected && snapshots_equal(delta, *expected));
        ++next;
        return true;
      });
  EXPECT_EQ(next, kEpochs);
  next = 0;
  reader.each_flight_events(
      [&](std::uint64_t epoch,
          const std::vector<observe::FlightEvent>& events) {
        EXPECT_EQ(epoch, next);
        EXPECT_EQ(events.size(), 2u);
        EXPECT_EQ(events[0].kind, observe::FlightEventKind::kFidelity);
        EXPECT_EQ(events[1].kind, observe::FlightEventKind::kEpochClose);
        ++next;
        return true;
      });
  EXPECT_EQ(next, kEpochs);
  // Point queries agree with the full scan.
  const auto delta3 = reader.metrics_delta_at(3);
  ASSERT_TRUE(delta3.has_value());
  const auto expected3 =
      decode_metrics_delta(encode_metrics_delta(delta_for_epoch(3)));
  EXPECT_TRUE(expected3 && snapshots_equal(*delta3, *expected3));
  EXPECT_EQ(reader.events_at(2).size(), 2u);
  EXPECT_TRUE(reader.events_at(kEpochs + 5).empty());
}

TEST(StoreMetrics, UncommittedEpochRollsBackOnWriterReopen) {
  TempDir dir("rollback");
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    store.put_metrics(0, delta_for_epoch(0));
    store.put_events(0, events_for_epoch(0));
    store.commit_epoch(meta_for_epoch(0));
    // Epoch 1's operational records are appended but never committed —
    // the crash window between put_* and commit_epoch.
    store.put_metrics(1, delta_for_epoch(1));
    store.put_events(1, events_for_epoch(1));
  }
  {
    // Writer reopen runs recovery: everything past the commit horizon is
    // truncated from all logs.
    DeploymentStore recovered({dir.str(), 64}, /*writable=*/true);
    ASSERT_TRUE(recovered.last_committed_epoch().has_value());
    EXPECT_EQ(*recovered.last_committed_epoch(), 0u);
  }
  DeploymentStore reader({dir.str(), 64}, /*writable=*/false);
  std::uint64_t metrics_epochs = 0;
  reader.each_metrics_delta([&](std::uint64_t, const auto&) {
    ++metrics_epochs;
    return true;
  });
  EXPECT_EQ(metrics_epochs, 1u);
  EXPECT_FALSE(reader.metrics_delta_at(1).has_value());
  EXPECT_TRUE(reader.events_at(1).empty());
}

TEST(StoreMetrics, ReaderHidesUncommittedTail) {
  // Without a writer reopen in between, a reader must still surface only
  // the committed prefix.
  TempDir dir("visible");
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    store.put_metrics(0, delta_for_epoch(0));
    store.commit_epoch(meta_for_epoch(0));
    store.put_metrics(1, delta_for_epoch(1));
    store.sync();
    DeploymentStore reader({dir.str(), 64}, /*writable=*/false);
    EXPECT_TRUE(reader.metrics_delta_at(0).has_value());
    EXPECT_FALSE(reader.metrics_delta_at(1).has_value());
  }
}

// -------------------------------------------------------- version refusal

/// Flips the payload version byte of the first record of `kind` in the ops
/// log's first shard and re-stamps the frame CRC — simulating a CRC-valid
/// record written by a build with a newer payload schema.
void bump_payload_version(const fs::path& dir, RecordKind kind) {
  const fs::path shard = dir / "ops.000000.jstore";
  ASSERT_TRUE(fs::exists(shard));
  std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  const auto size = fs::file_size(shard);
  std::vector<std::uint8_t> bytes(size);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(size));
  std::size_t off = kShardHeaderBytes;
  while (off + kRecordHeaderBytes <= bytes.size()) {
    RecordHeader h = decode_record_header(bytes.data() + off);
    if (h.payload_len == 0 && h.crc32 == 0 && h.epoch == 0 && h.kind == 0) {
      break;  // pre-allocated tail
    }
    const std::size_t payload_at = off + kRecordHeaderBytes;
    ASSERT_LE(payload_at + h.payload_len, bytes.size());
    if (h.kind == static_cast<std::uint32_t>(kind)) {
      bytes[payload_at + 1] = 99;  // the version byte after the magic
      h.crc32 = crc32({bytes.data() + payload_at, h.payload_len});
      encode_record_header(h, bytes.data() + off);
      f.seekp(static_cast<std::streamoff>(off));
      f.write(reinterpret_cast<const char*>(bytes.data() + off),
              static_cast<std::streamsize>(kRecordHeaderBytes +
                                           h.payload_len));
      ASSERT_TRUE(f.good());
      return;
    }
    off = payload_at + h.payload_len;
  }
  FAIL() << "no record of the requested kind in " << shard;
}

TEST(StoreMetrics, RefusesMetricsPayloadFromNewerSchema) {
  TempDir dir("refuse_metrics");
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    store.put_metrics(0, delta_for_epoch(0));
    store.put_events(0, events_for_epoch(0));
    store.commit_epoch(meta_for_epoch(0));
  }
  bump_payload_version(dir.path, RecordKind::kMetrics);
  DeploymentStore reader({dir.str(), 64}, /*writable=*/false);
  EXPECT_THROW(
      reader.each_metrics_delta([](std::uint64_t, const auto&) {
        return true;
      }),
      std::runtime_error);
  EXPECT_THROW((void)reader.metrics_delta_at(0), std::runtime_error);
  // The events stream in the same log is untouched and still readable.
  EXPECT_EQ(reader.events_at(0).size(), 2u);
}

TEST(StoreMetrics, RefusesEventsPayloadFromNewerSchema) {
  TempDir dir("refuse_events");
  {
    DeploymentStore store({dir.str(), 64}, /*writable=*/true);
    store.put_events(0, events_for_epoch(0));
    store.commit_epoch(meta_for_epoch(0));
  }
  bump_payload_version(dir.path, RecordKind::kEvents);
  DeploymentStore reader({dir.str(), 64}, /*writable=*/false);
  EXPECT_THROW(
      reader.each_flight_events(
          [](std::uint64_t, const std::vector<observe::FlightEvent>&) {
            return true;
          }),
      std::runtime_error);
}

}  // namespace
}  // namespace jaal::store
