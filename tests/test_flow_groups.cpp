#include "assign/flow_groups.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::assign {
namespace {

using netsim::NodeId;

class FlowGroupsFixture : public ::testing::Test {
 protected:
  FlowGroupsFixture()
      : topo_(netsim::make_isp_topology(netsim::abovenet_profile(), 1)),
        demands_(netsim::random_demands(topo_, 200, 5000.0, 3)) {}

  netsim::Topology topo_;
  std::vector<netsim::Demand> demands_;
};

TEST_F(FlowGroupsFixture, DerivedGroupsReferenceValidMonitors) {
  const auto sites = topo_.default_monitor_sites(20);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& d : demands_) pairs.emplace_back(d.src, d.dst);
  const RoutedGroups routed = derive_monitor_groups(topo_, sites, pairs);

  EXPECT_EQ(routed.group_of_pair.size(), pairs.size());
  for (const MonitorGroup& g : routed.groups) {
    EXPECT_FALSE(g.monitors.empty());
    for (MonitorIndex m : g.monitors) EXPECT_LT(m, sites.size());
    // Monitors within a group are unique and sorted.
    for (std::size_t i = 1; i < g.monitors.size(); ++i) {
      EXPECT_LT(g.monitors[i - 1], g.monitors[i]);
    }
  }
}

TEST_F(FlowGroupsFixture, GroupsAreDeduplicated) {
  const auto sites = topo_.default_monitor_sites(20);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& d : demands_) pairs.emplace_back(d.src, d.dst);
  // Duplicate every pair: group count must not change.
  const std::size_t original = pairs.size();
  for (std::size_t i = 0; i < original; ++i) pairs.push_back(pairs[i]);
  const RoutedGroups routed = derive_monitor_groups(topo_, sites, pairs);
  for (std::size_t i = 0; i < original; ++i) {
    EXPECT_EQ(routed.group_of_pair[i], routed.group_of_pair[original + i]);
  }
  // No two groups share the same monitor set.
  for (std::size_t a = 0; a < routed.groups.size(); ++a) {
    for (std::size_t b = a + 1; b < routed.groups.size(); ++b) {
      EXPECT_NE(routed.groups[a].monitors, routed.groups[b].monitors);
    }
  }
}

TEST_F(FlowGroupsFixture, PairsOffMonitorPathsReportedUncovered) {
  // With a single monitor site, many pairs won't cross it.
  const auto one_site = topo_.default_monitor_sites(1);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& d : demands_) pairs.emplace_back(d.src, d.dst);
  const RoutedGroups routed = derive_monitor_groups(topo_, one_site, pairs);
  EXPECT_GT(routed.uncovered_pairs(), 0u);
  EXPECT_LT(routed.uncovered_pairs(), pairs.size());  // it covers something
}

TEST_F(FlowGroupsFixture, RejectsBadMonitorSite) {
  const std::vector<NodeId> bad = {static_cast<NodeId>(topo_.node_count())};
  EXPECT_THROW((void)derive_monitor_groups(topo_, bad, {}),
               std::invalid_argument);
}

TEST_F(FlowGroupsFixture, CoveragePlacementBeatsDegreePlacement) {
  // Greedy coverage placement should cover at least as much demand as the
  // degree-based default for the same monitor budget.
  const std::size_t budget = 10;
  const auto coverage_sites =
      place_monitors_coverage(topo_, demands_, budget);
  const auto degree_sites = topo_.default_monitor_sites(budget);
  EXPECT_EQ(coverage_sites.size(), budget);
  EXPECT_GE(coverage_fraction(topo_, demands_, coverage_sites),
            coverage_fraction(topo_, demands_, degree_sites) - 1e-9);
}

TEST_F(FlowGroupsFixture, CoverageIsMonotoneInBudget) {
  double last = 0.0;
  for (std::size_t budget : {2u, 5u, 10u, 20u}) {
    const auto sites = place_monitors_coverage(topo_, demands_, budget);
    const double cov = coverage_fraction(topo_, demands_, sites);
    EXPECT_GE(cov, last - 1e-9);
    last = cov;
  }
  EXPECT_GT(last, 0.9);  // 20 well-placed monitors see nearly everything
}

TEST_F(FlowGroupsFixture, PlacementValidatesInput) {
  EXPECT_THROW((void)place_monitors_coverage(topo_, demands_, 0),
               std::invalid_argument);
  EXPECT_THROW((void)place_monitors_coverage(topo_, {}, 3),
               std::invalid_argument);
}

TEST_F(FlowGroupsFixture, PlacementProducesDistinctSites) {
  const auto sites = place_monitors_coverage(topo_, demands_, 15);
  for (std::size_t a = 0; a < sites.size(); ++a) {
    for (std::size_t b = a + 1; b < sites.size(); ++b) {
      EXPECT_NE(sites[a], sites[b]);
    }
  }
}

}  // namespace
}  // namespace jaal::assign
