// Distributed-mode end-to-end test: monitors and the controller exchange
// ONLY framed byte streams (proto module) — summaries up, raw-packet
// requests down, raw-packet responses up — exercising the complete §7 wire
// path including the feedback loop.
#include <gtest/gtest.h>

#include "attack/generators.hpp"
#include "core/experiment.hpp"
#include "core/monitor.hpp"
#include "proto/messages.hpp"
#include "trace/mix.hpp"

namespace jaal {
namespace {

/// A monitor endpoint: owns a core::Monitor and answers framed requests.
class MonitorEndpoint {
 public:
  MonitorEndpoint(summarize::MonitorId id,
                  const summarize::SummarizerConfig& cfg)
      : monitor_(id, cfg) {}

  void observe(const packet::PacketRecord& pkt) { monitor_.observe(pkt); }

  /// Epoch close: returns the framed SummaryUpload (empty if below n_min).
  [[nodiscard]] std::vector<std::uint8_t> flush_frame(std::uint32_t epoch) {
    auto summary = monitor_.flush_epoch();
    if (!summary) return {};
    proto::SummaryUpload upload;
    upload.epoch = epoch;
    upload.summary = std::move(*summary);
    return proto::encode(proto::Message{upload});
  }

  /// Handles one inbound frame; returns the framed response (if any).
  [[nodiscard]] std::vector<std::uint8_t> handle(
      std::span<const std::uint8_t> frame) {
    const proto::Message msg = proto::decode(frame);
    const auto* request = std::get_if<proto::RawPacketRequest>(&msg);
    if (request == nullptr) return {};
    proto::RawPacketResponse response;
    response.epoch = request->epoch;
    std::vector<std::size_t> centroids(request->centroids.begin(),
                                       request->centroids.end());
    response.packets = monitor_.raw_packets_for(centroids);
    return proto::encode(proto::Message{response});
  }

 private:
  core::Monitor monitor_;
};

TEST(Distributed, FullEpochOverFramedStreams) {
  // Traffic: background plus a DDoS, split across 3 monitor endpoints.
  trace::BackgroundTraffic background(trace::trace1_profile(), 21);
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.packets_per_second = 5600.0;  // ~10% of background
  acfg.seed = 22;
  attack::DistributedSynFlood flood(acfg);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  summarize::SummarizerConfig scfg;
  scfg.batch_size = 1000;
  scfg.min_batch = 300;
  scfg.rank = 12;
  scfg.centroids = 200;

  std::vector<MonitorEndpoint> monitors;
  for (summarize::MonitorId id = 0; id < 3; ++id) {
    monitors.emplace_back(id, scfg);
  }
  for (int i = 0; i < 3000; ++i) {
    const auto pkt = mix.next();
    monitors[packet::FlowKeyHash{}(pkt.flow()) % monitors.size()].observe(pkt);
  }

  // --- Monitor -> controller: summary uploads as frames over a stream.
  proto::FrameReader controller_rx;
  for (auto& m : monitors) {
    const auto frame = m.flush_frame(/*epoch=*/1);
    ASSERT_FALSE(frame.empty());
    // Feed in two chunks to exercise reassembly.
    const std::size_t half = frame.size() / 2;
    controller_rx.feed(std::span<const std::uint8_t>(frame.data(), half));
    controller_rx.feed(std::span<const std::uint8_t>(frame.data() + half,
                                                     frame.size() - half));
  }

  inference::Aggregator aggregator;
  std::size_t uploads = 0;
  while (auto msg = controller_rx.next()) {
    const auto& upload = std::get<proto::SummaryUpload>(*msg);
    EXPECT_EQ(upload.epoch, 1u);
    aggregator.add(upload.summary);
    ++uploads;
  }
  EXPECT_EQ(uploads, 3u);
  const auto aggregate = aggregator.take();
  EXPECT_GT(aggregate.rows(), 0u);

  // --- Controller inference, with the feedback fetcher doing a full
  // framed round trip to the owning monitor endpoint.
  std::size_t framed_round_trips = 0;
  const inference::RawPacketFetcher fetcher =
      [&](summarize::MonitorId id, const std::vector<std::size_t>& centroids) {
        proto::RawPacketRequest request;
        request.epoch = 1;
        for (std::size_t c : centroids) {
          request.centroids.push_back(static_cast<std::uint32_t>(c));
        }
        const auto request_frame = proto::encode(proto::Message{request});
        const auto response_frame = monitors.at(id).handle(request_frame);
        ++framed_round_trips;
        if (response_frame.empty()) return std::vector<packet::PacketRecord>{};
        const auto response = proto::decode(response_frame);
        return std::get<proto::RawPacketResponse>(response).packets;
      };

  inference::EngineConfig ecfg;
  ecfg.default_thresholds = {1e-7, 0.03};  // force the case-3 path
  ecfg.tau_c_scale = 1.5;                   // 3000-packet window
  inference::InferenceEngine engine(
      rules::parse_rules(rules::default_ruleset_text(),
                         core::evaluation_rule_vars()),
      ecfg);
  const auto alerts = engine.infer(aggregate, fetcher);

  bool ddos = false;
  for (const auto& alert : alerts) {
    if (alert.sid == 1000002) {
      ddos = true;
      EXPECT_TRUE(alert.via_feedback);  // decided from fetched raw packets
    }
  }
  EXPECT_TRUE(ddos);
  EXPECT_GT(framed_round_trips, 0u);
  EXPECT_GT(engine.stats().raw_packets_fetched, 0u);
}

TEST(Distributed, AlertRecordsTravelToOperatorLog) {
  // Controller -> operator console: alerts as framed records.
  inference::Alert alert;
  alert.sid = 1000002;
  alert.msg = "Distributed SYN flood";
  alert.matched_packets = 431;
  alert.distributed = true;
  alert.via_feedback = true;

  proto::AlertRecord record{alert.sid, alert.msg, alert.matched_packets,
                            alert.distributed, alert.via_feedback};
  proto::FrameReader console;
  console.feed(proto::encode(proto::Message{record}));
  const auto msg = console.next();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get<proto::AlertRecord>(*msg), record);
}

}  // namespace
}  // namespace jaal
