// observe/flight_recorder: the fixed-size ring of structured operational
// events — seq assignment, oldest-first wrap-around, deterministic JSONL
// dumps, and the wait-free concurrent record() contract.
#include "observe/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace jaal::observe {
namespace {

FlightEvent fidelity_event(std::uint64_t epoch, std::uint32_t monitor) {
  FlightEvent ev;
  ev.epoch = epoch;
  ev.kind = FlightEventKind::kFidelity;
  ev.actor = monitor;
  ev.a = 0.9991;
  ev.b = 0.0007;
  ev.c = 0.0031;
  ev.u[0] = 2941;
  return ev;
}

TEST(FlightRecorder, ZeroCapacityThrows) {
  EXPECT_THROW(FlightRecorder(0), std::invalid_argument);
}

TEST(FlightRecorder, AssignsGapFreeSequenceOldestFirst) {
  FlightRecorder rec(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    FlightEvent ev = fidelity_event(i, 0);
    ev.seq = 999;  // record() owns seq; the caller's value is ignored.
    rec.record(ev);
  }
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].epoch, i);
  }
}

TEST(FlightRecorder, WrapKeepsNewestAndCountsDropped) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i) rec.record(fidelity_event(i, 0));
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The ring holds the last capacity events, oldest surviving one first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
  }
}

TEST(FlightRecorder, DumpIsDeterministicAcrossInstances) {
  FlightRecorder a(8);
  FlightRecorder b(8);
  for (std::uint64_t i = 0; i < 12; ++i) {
    a.record(fidelity_event(i, static_cast<std::uint32_t>(i % 3)));
    b.record(fidelity_event(i, static_cast<std::uint32_t>(i % 3)));
  }
  const std::string da = a.dump_jsonl();
  EXPECT_EQ(da, b.dump_jsonl());
  EXPECT_EQ(a.dumps_taken(), 1u);
  // Header line first, then one line per live event.
  EXPECT_EQ(da.rfind("{\"kind\":\"flight_recorder\"", 0), 0u);
  EXPECT_EQ(std::count(da.begin(), da.end(), '\n'), 1 + 8);
}

TEST(FlightRecorder, EventJsonCarriesKindSpecificPayload) {
  FlightEvent ev = fidelity_event(7, 2);
  ev.seq = 41;
  const std::string line = to_json(ev);
  EXPECT_NE(line.find("\"seq\":41"), std::string::npos);
  EXPECT_NE(line.find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"fidelity\""), std::string::npos);
  EXPECT_NE(line.find("\"actor\":2"), std::string::npos);
  EXPECT_NE(line.find("2941"), std::string::npos);
}

TEST(FlightRecorder, DriftMetricNamesRoundTrip) {
  for (std::uint64_t id = 0; id < 3; ++id) {
    EXPECT_EQ(drift_metric_id(drift_metric_name(id)), id);
  }
}

TEST(FlightRecorder, ConcurrentRecordLosesNothing) {
  // capacity >> in-flight writers: the documented no-wrap-within-a-burst
  // regime, where record() must publish every event exactly once.
  constexpr std::uint64_t kPerThread = 2000;
  FlightRecorder rec(2 * kPerThread);
  auto writer = [&rec](std::uint32_t actor) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      rec.record(fidelity_event(i, actor));
    }
  };
  std::thread t0(writer, 0);
  std::thread t1(writer, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(rec.total_recorded(), 2 * kPerThread);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2 * kPerThread);
  // Every sequence number appears exactly once.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(events.size());
  for (const auto& ev : events) seqs.push_back(ev.seq);
  std::sort(seqs.begin(), seqs.end());
  for (std::uint64_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

}  // namespace
}  // namespace jaal::observe
