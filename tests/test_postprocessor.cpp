#include "inference/postprocessor.hpp"

#include <gtest/gtest.h>

#include "linalg/stats.hpp"

namespace jaal::inference {
namespace {

using packet::FieldIndex;

AggregatedSummary aggregate_with_field(std::vector<double> values,
                                       std::vector<std::uint64_t> counts,
                                       FieldIndex field) {
  AggregatedSummary agg;
  agg.centroids = linalg::Matrix(values.size(), packet::kFieldCount);
  for (std::size_t i = 0; i < values.size(); ++i) {
    agg.centroids(i, packet::index(field)) = values[i];
    agg.origin.push_back(0);
    agg.local_index.push_back(i);
  }
  agg.counts = std::move(counts);
  return agg;
}

TEST(Postprocessor, MatchesWeightedVarianceFormula) {
  const std::vector<double> values = {0.1, 0.5, 0.9};
  const std::vector<std::uint64_t> counts = {2, 3, 1};
  const auto agg =
      aggregate_with_field(values, counts, FieldIndex::kTcpDstPort);
  const std::vector<std::size_t> rows = {0, 1, 2};
  EXPECT_NEAR(matched_variance(agg, rows, FieldIndex::kTcpDstPort),
              linalg::weighted_variance(values, counts), 1e-12);
}

TEST(Postprocessor, SubsetOfRowsOnly) {
  const auto agg = aggregate_with_field({0.0, 1.0, 0.5}, {1, 1, 1},
                                        FieldIndex::kIpSrcAddr);
  const std::vector<std::size_t> rows = {0, 1};  // exclude the middle value
  // Variance of {0, 1} = 0.25.
  EXPECT_NEAR(matched_variance(agg, rows, FieldIndex::kIpSrcAddr), 0.25,
              1e-12);
}

TEST(Postprocessor, ConcentratedFieldHasZeroVariance) {
  const auto agg = aggregate_with_field({0.3, 0.3, 0.3}, {100, 50, 25},
                                        FieldIndex::kTcpDstPort);
  const std::vector<std::size_t> rows = {0, 1, 2};
  EXPECT_DOUBLE_EQ(matched_variance(agg, rows, FieldIndex::kTcpDstPort), 0.0);
  EXPECT_FALSE(postprocess(agg, rows, FieldIndex::kTcpDstPort, 1e-9));
}

TEST(Postprocessor, ThresholdSemantics) {
  const auto agg = aggregate_with_field({0.0, 1.0}, {1, 1},
                                        FieldIndex::kIpSrcAddr);
  const std::vector<std::size_t> rows = {0, 1};
  EXPECT_TRUE(postprocess(agg, rows, FieldIndex::kIpSrcAddr, 0.25));
  EXPECT_TRUE(postprocess(agg, rows, FieldIndex::kIpSrcAddr, 0.2499));
  EXPECT_FALSE(postprocess(agg, rows, FieldIndex::kIpSrcAddr, 0.2501));
}

TEST(Postprocessor, EmptyMatchSetIsZeroVariance) {
  const auto agg = aggregate_with_field({0.1}, {1}, FieldIndex::kTcpDstPort);
  EXPECT_DOUBLE_EQ(matched_variance(agg, {}, FieldIndex::kTcpDstPort), 0.0);
}

TEST(Postprocessor, CountsWeightTheSpread) {
  // Two centroids far apart, but one dominates by count: the variance is
  // smaller than the unweighted value (0.25).
  const auto agg = aggregate_with_field({0.0, 1.0}, {99, 1},
                                        FieldIndex::kIpDstAddr);
  const std::vector<std::size_t> rows = {0, 1};
  const double v = matched_variance(agg, rows, FieldIndex::kIpDstAddr);
  EXPECT_LT(v, 0.05);
  EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace jaal::inference
