#include "summarize/normalize.hpp"

#include <gtest/gtest.h>

#include "trace/background.hpp"

namespace jaal::summarize {
namespace {

TEST(Normalize, MatrixShapeMatchesBatch) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 1);
  const auto batch = trace::take(gen, 64);
  const linalg::Matrix x = to_matrix(batch);
  EXPECT_EQ(x.rows(), 64u);
  EXPECT_EQ(x.cols(), packet::kFieldCount);
}

TEST(Normalize, RowsMatchFieldVectors) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 2);
  const auto batch = trace::take(gen, 16);
  const linalg::Matrix x = to_matrix(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto v = packet::to_field_vector(batch[i]);
    for (std::size_t j = 0; j < packet::kFieldCount; ++j) {
      EXPECT_EQ(x(i, j), v[j]);
    }
  }
}

TEST(Normalize, NormalizedEntriesInUnitInterval) {
  trace::BackgroundTraffic gen(trace::trace2_profile(), 3);
  const auto batch = trace::take(gen, 256);
  const linalg::Matrix x = to_normalized_matrix(batch);
  for (double v : x.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Normalize, InPlaceMatchesFreshConversion) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 4);
  const auto batch = trace::take(gen, 32);
  linalg::Matrix raw = to_matrix(batch);
  normalize_in_place(raw);
  EXPECT_EQ(raw, to_normalized_matrix(batch));
}

TEST(Normalize, InPlaceRejectsWrongWidth) {
  linalg::Matrix wrong(4, 7);
  EXPECT_THROW(normalize_in_place(wrong), std::invalid_argument);
}

TEST(Normalize, EmptyBatchYieldsEmptyMatrix) {
  const linalg::Matrix x = to_matrix({});
  EXPECT_EQ(x.rows(), 0u);
}

}  // namespace
}  // namespace jaal::summarize
