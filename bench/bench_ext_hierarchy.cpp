// Extension: hierarchical aggregation at the controller.
//
// The aggregate has up to M*k rows; with hundreds of monitors (topology 1
// alone has 367 routers) every question pays O(M*k) distance computations
// per epoch.  Re-clustering the count-weighted aggregate down to k2 rows
// (weighted k-means++) bounds the matching cost again.  This bench measures
// the matching speedup and the fidelity of matched counts after reduction.
#include "common.hpp"

#include <chrono>

#include "attack/generators.hpp"
#include "trace/mix.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Extension: hierarchical aggregation (second-level reduction)");

  // A deployment of 100 monitors, each summarizing a 600-packet batch of
  // background + DDoS traffic into 120 centroids.
  constexpr std::size_t kMonitors = 100;
  constexpr std::size_t kBatch = 600;
  constexpr std::size_t kCentroids = 120;

  trace::BackgroundTraffic background(trace::trace1_profile(), 31);
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.packets_per_second = 5600.0;
  acfg.seed = 32;
  attack::DistributedSynFlood flood(acfg);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  std::vector<std::vector<packet::PacketRecord>> batches(kMonitors);
  for (std::size_t i = 0; i < kMonitors * kBatch; ++i) {
    const auto pkt = mix.next();
    batches[packet::FlowKeyHash{}(pkt.flow()) % kMonitors].push_back(pkt);
  }

  inference::Aggregator aggregator;
  for (std::size_t m = 0; m < kMonitors; ++m) {
    if (batches[m].size() < 50) continue;
    summarize::SummarizerConfig scfg;
    scfg.batch_size = batches[m].size();
    scfg.min_batch = 1;
    scfg.rank = 12;
    scfg.centroids = kCentroids;
    scfg.seed = 100 + m;
    summarize::Summarizer summarizer(scfg,
                                     static_cast<summarize::MonitorId>(m));
    aggregator.add(summarizer.summarize(batches[m]).summary);
  }
  const auto full = aggregator.take();
  std::printf("  deployment: %zu monitors -> aggregate of %zu rows (%llu "
              "packets)\n",
              kMonitors, full.rows(),
              static_cast<unsigned long long>(full.total_packets()));

  const auto questions = rules::translate(bench::evaluation_ruleset());
  volatile std::uint64_t sink = 0;
  auto match_time_us = [&](const inference::AggregatedSummary& agg) {
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 50;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto& q : questions) {
        sink = sink +
               inference::estimate_similarity(q, agg, 0.015).matched_count;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() /
           (kReps * questions.size());
  };

  std::printf("\n  %-14s %-10s %-18s %-22s\n", "aggregate", "rows",
              "us/question", "DSYN matched count");
  const auto dsyn_count = [&](const inference::AggregatedSummary& agg) {
    for (const auto& q : questions) {
      if (q.sid == 1000002) {
        return inference::estimate_similarity(q, agg, 0.015).matched_count;
      }
    }
    return std::uint64_t{0};
  };
  std::printf("  %-14s %-10zu %-18.1f %-22llu\n", "full", full.rows(),
              match_time_us(full),
              static_cast<unsigned long long>(dsyn_count(full)));
  for (std::size_t k2 : {2000u, 500u, 200u}) {
    const auto reduced = inference::reduce_aggregate(full, k2, 5);
    std::printf("  k2=%-11zu %-10zu %-18.1f %-22llu\n", k2, reduced.rows(),
                match_time_us(reduced),
                static_cast<unsigned long long>(dsyn_count(reduced)));
  }
  std::printf(
      "\n  matched counts stay close under reduction while per-question\n"
      "  matching cost drops with the row count; feedback requires the\n"
      "  unreduced tier (origins are lost in reduction).\n");
  return 0;
}
