// Fig. 7: feasibility of the vanilla copy-raw-packets approach.
//
// Monitors replicate a fraction of observed traffic toward a central Snort
// engine over the Abovenet-like topology; 25 random engine placements are
// averaged.  Paper shape: at 100% replication, ~70% average (90% worst
// case) customer throughput loss and ~75% accuracy loss; at Jaal's ~35%
// replication equivalent, <10% average (<20% worst case) throughput loss.
#include "common.hpp"

#include "netsim/replication.hpp"

int main() {
  using namespace jaal;
  using namespace jaal::netsim;
  bench::print_header(
      "Fig. 7: degradation vs % of traffic replicated (topology 1)\n"
      "paper: 70% avg / 90% worst throughput loss, 75% accuracy loss @100%");

  const Topology topo = make_isp_topology(abovenet_profile(), 1);
  const auto monitors = topo.default_monitor_sites(25);
  const auto demands = random_demands(topo, 400, 8000.0 * 8.0, 7);

  // 25 random engine placements, as in the paper's 25 experiments.  Tight
  // router provisioning (15% headroom over planned workload) mirrors the
  // paper's NFV testbed, where 370 virtual switches shared five servers.
  std::mt19937_64 rng(99);
  std::vector<ReplicationExperiment> experiments;
  for (int i = 0; i < 25; ++i) {
    const NodeId engine = monitors[rng() % monitors.size()];
    experiments.emplace_back(topo, monitors, engine, demands, 2.0e7, 1.15);
  }

  // Throughput loss combines the two degradation channels the testbed
  // exhibits: link congestion on the copy paths and router forwarding
  // capacity consumed by duplicating + relaying copies.
  std::printf("  %-12s %-16s %-16s %-16s\n", "replicated%",
              "thr.loss avg%", "thr.loss worst%", "accuracy loss%");
  for (double f : {0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 1.0}) {
    double loss_sum = 0.0, loss_worst = 0.0, acc_sum = 0.0;
    for (const auto& exp : experiments) {
      const ReplicationResult base = exp.evaluate(0.0);
      const ReplicationResult r = exp.evaluate(f);
      const double link_extra =
          std::max(0.0, r.throughput_loss - base.throughput_loss);
      // Channels compose: traffic must survive both link loss and router
      // processing drops.
      const double combined =
          1.0 - (1.0 - link_extra) * (1.0 - r.router_throughput_loss);
      loss_sum += combined;
      loss_worst = std::max(
          loss_worst, 1.0 - (1.0 - r.worst_demand_loss) *
                                (1.0 - r.worst_router_demand_loss));
      acc_sum += 1.0 - r.detection_accuracy;
    }
    std::printf("  %-12.0f %-16.1f %-16.1f %-16.1f\n", f * 100.0,
                100.0 * loss_sum / experiments.size(), 100.0 * loss_worst,
                100.0 * acc_sum / experiments.size());
  }
  std::printf(
      "\n  Jaal ships ~35%% of raw bytes as summaries+feedback, i.e. the\n"
      "  35%% row above bounds its network impact.\n");
  return 0;
}
