// Ablation: streaming mini-batch clustering vs per-epoch batch k-means++.
//
// A monitor at high packet rates can amortize clustering per packet instead
// of per epoch.  This bench compares quantization quality and per-packet
// cost of the two strategies on identical traffic.
#include "common.hpp"

#include <chrono>

#include "summarize/kmeans.hpp"
#include "summarize/minibatch.hpp"
#include "summarize/normalize.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Ablation: streaming mini-batch clustering vs batch k-means++");

  trace::BackgroundTraffic gen(trace::trace1_profile(), 17);
  const auto packets = trace::take(gen, 5000);
  const linalg::Matrix x = summarize::to_normalized_matrix(packets);

  std::printf("  %-6s %-26s %-26s\n", "k", "batch k-means++ (MSE, us/pkt)",
              "mini-batch (MSE, us/pkt)");
  for (std::size_t k : {64u, 128u, 200u}) {
    // Batch: one k-means per 1000-packet epoch (5 epochs).
    auto t0 = std::chrono::steady_clock::now();
    double batch_mse = 0.0;
    for (int epoch = 0; epoch < 5; ++epoch) {
      const linalg::Matrix slice = [&] {
        linalg::Matrix s(1000, x.cols());
        for (std::size_t i = 0; i < 1000; ++i) {
          const auto src = x.row(epoch * 1000 + i);
          std::copy(src.begin(), src.end(), s.row(i).begin());
        }
        return s;
      }();
      std::mt19937_64 rng(epoch);
      const auto km = summarize::kmeans(slice, k, rng);
      batch_mse += km.inertia / 1000.0;
    }
    batch_mse /= 5.0;
    auto t1 = std::chrono::steady_clock::now();
    const double batch_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / 5000.0;

    // Streaming: one clusterer across all 5 epochs (warm starts).
    t0 = std::chrono::steady_clock::now();
    summarize::MiniBatchClusterer mb(k, packet::kFieldCount, 3);
    for (const auto& pkt : packets) mb.add(pkt);
    t1 = std::chrono::steady_clock::now();
    const double mb_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / 5000.0;

    std::printf("  %-6zu %10.5f, %7.2f us %14.5f, %7.2f us\n", k, batch_mse,
                batch_us, mb.mean_quantization_error(), mb_us);
  }
  std::printf("\n  mini-batch trades some cluster tightness for flat\n"
              "  per-packet cost and warm starts across epochs.\n");
  return 0;
}
