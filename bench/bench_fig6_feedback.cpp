// Fig. 6: the feedback loop's accuracy/overhead trade-off.
//
// Sweep the loose threshold tau_d2 upward from the strict tau_d1: each step
// converts more "uncertain" batches into case-3 raw-packet retrievals,
// raising TPR at the cost of extra communication.  Paper shape: without
// feedback ~92% TPR at ~30% of raw-packet bytes; the feedback loop lifts
// TPR to ~98% while overhead only grows to ~35%; pushing further buys
// little TPR while overhead rises sharply.
#include "common.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Fig. 6: TPR and communication overhead with the feedback loop\n"
      "paper: 92% TPR @ 30% overhead (no feedback) -> 98% TPR @ 35%");

  constexpr std::size_t kPositives = 15;
  constexpr std::size_t kNegatives = 15;
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  cfg.attack_intensity_min = 1.0;  // paper: attacks run at the 10% cap
  cfg.attack_intensity_max = 1.0;
  const auto trials = core::make_trial_set(core::evaluation_attacks(),
                                           kPositives, kNegatives, cfg);
  const double scale = core::tau_c_scale_for(cfg);

  std::printf("  %-28s %-8s %-8s %-18s\n", "configuration", "TPR", "FPR",
              "bytes vs raw (%)");

  // Baseline: strict threshold only, no feedback.
  {
    inference::EngineConfig ecfg;
    ecfg.default_thresholds = {0.008, 0.008};
    ecfg.feedback_enabled = false;
    ecfg.tau_c_scale = scale;
    const auto out = core::evaluate_with_feedback(
        trials, core::evaluation_attacks(), bench::evaluation_ruleset(), ecfg);
    std::printf("  %-28s %-8.3f %-8.3f %-18.1f\n", "no feedback (tau_d1 only)",
                out.confusion.tpr(), out.confusion.fpr(),
                100.0 * out.comm_overhead_ratio);
  }

  // Feedback sweeps: tau_d1 fixed strict, tau_d2 loosening.
  for (double tau_d2 : {0.012, 0.02, 0.03, 0.06, 0.12}) {
    inference::EngineConfig ecfg;
    ecfg.default_thresholds = {0.008, tau_d2};
    ecfg.feedback_enabled = true;
    ecfg.tau_c_scale = scale;
    const auto out = core::evaluate_with_feedback(
        trials, core::evaluation_attacks(), bench::evaluation_ruleset(), ecfg);
    char label[64];
    std::snprintf(label, sizeof(label), "feedback tau_d2 = %.3f", tau_d2);
    std::printf("  %-28s %-8.3f %-8.3f %-18.1f\n", label, out.confusion.tpr(),
                out.confusion.fpr(), 100.0 * out.comm_overhead_ratio);
  }

  // Loose threshold without feedback, for contrast (high TPR, high FPR).
  {
    inference::EngineConfig ecfg;
    ecfg.default_thresholds = {0.03, 0.03};
    ecfg.feedback_enabled = false;
    ecfg.tau_c_scale = scale;
    const auto out = core::evaluate_with_feedback(
        trials, core::evaluation_attacks(), bench::evaluation_ruleset(), ecfg);
    std::printf("  %-28s %-8.3f %-8.3f %-18.1f\n",
                "no feedback (loose tau_d)", out.confusion.tpr(),
                out.confusion.fpr(), 100.0 * out.comm_overhead_ratio);
  }
  return 0;
}
