// §10 "Adaptive attackers": can an attacker who knows how Jaal works bias
// the summarization by mimicking benign traffic in the free header fields?
//
// Compares detection of the plain distributed SYN flood against the
// mimicry variant (benign-like windows/lengths/TTLs/options) at the same
// operating point, with and without the raw-verification extension.
#include "common.hpp"

#include "attack/generators.hpp"
#include "trace/mix.hpp"

namespace {

using namespace jaal;

/// Builds a trial manually so we can use the mimicry generator.
core::Trial mimicry_trial(bool mimicry, std::uint64_t seed, double intensity) {
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  cfg.attack_intensity_min = 1.0;
  cfg.attack_intensity_max = 1.0;

  trace::BackgroundTraffic background(cfg.profile, seed);
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.packets_per_second = cfg.attack_rate_pps * intensity;
  acfg.seed = seed ^ 0xADA;

  std::unique_ptr<attack::AttackSource> attacker;
  if (mimicry) {
    attacker = std::make_unique<attack::MimicrySynFlood>(acfg);
  } else {
    attacker = std::make_unique<attack::DistributedSynFlood>(acfg);
  }
  trace::TrafficMix mix(background, {attacker.get()}, cfg.attack_fraction);

  core::Trial trial;
  trial.injected = packet::AttackType::kDistributedSynFlood;
  trial.monitor_packets.resize(cfg.monitor_count);
  trial.monitor_assignment.resize(cfg.monitor_count);
  const std::size_t total = cfg.monitor_count * cfg.summarizer.batch_size;
  for (std::size_t i = 0; i < total; ++i) {
    const auto pkt = mix.next();
    trial.monitor_packets[packet::FlowKeyHash{}(pkt.flow()) %
                          cfg.monitor_count]
        .push_back(pkt);
  }
  inference::Aggregator aggregator;
  for (std::size_t m = 0; m < cfg.monitor_count; ++m) {
    auto& batch = trial.monitor_packets[m];
    trial.raw_header_bytes += batch.size() * packet::kHeadersBytes;
    summarize::SummarizerConfig scfg = cfg.summarizer;
    scfg.seed = seed * 131 + m;
    summarize::Summarizer summarizer(scfg,
                                     static_cast<summarize::MonitorId>(m));
    auto out = summarizer.summarize(batch);
    trial.summary_bytes += summarize::wire_bytes(out.summary);
    trial.monitor_assignment[m] = std::move(out.assignment);
    aggregator.add(out.summary);
  }
  trial.aggregate = aggregator.take();
  return trial;
}

double tpr(bool mimicry, bool verify, double intensity) {
  constexpr int kTrials = 20;
  int hits = 0;
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  inference::EngineConfig ecfg =
      bench::operating_point(core::tau_c_scale_for(cfg), true);
  ecfg.verify_all_alerts = verify;
  for (int i = 0; i < kTrials; ++i) {
    const auto trial = mimicry_trial(mimicry, 3000 + i * 11, intensity);
    hits += core::detect(trial, packet::AttackType::kDistributedSynFlood,
                         bench::evaluation_ruleset(), ecfg)
                ? 1
                : 0;
  }
  return static_cast<double>(hits) / kTrials;
}

}  // namespace

int main() {
  using namespace jaal;
  bench::print_header(
      "Extension (paper §10): adaptive attacker biasing the summarization");
  std::printf("  distributed SYN flood, victim-pinned fields unchanged;\n"
              "  mimicry variant copies benign windows/lengths/TTLs/options\n\n");
  std::printf("  %-34s %-16s %-16s\n", "variant", "TPR (full rate)",
              "TPR (1/4 rate)");
  std::printf("  %-34s %-16.2f %-16.2f\n", "plain flood",
              tpr(false, false, 1.0), tpr(false, false, 0.25));
  std::printf("  %-34s %-16.2f %-16.2f\n", "mimicry flood",
              tpr(true, false, 1.0), tpr(true, false, 0.25));
  std::printf("  %-34s %-16.2f %-16.2f\n", "plain flood  + raw verification",
              tpr(false, true, 1.0), tpr(false, true, 0.25));
  std::printf("  %-34s %-16.2f %-16.2f\n", "mimicry flood + raw verification",
              tpr(true, true, 1.0), tpr(true, true, 0.25));
  std::printf(
      "\n  The question vector pins dst address/port and the SYN flag, which\n"
      "  the attacker cannot disguise without neutering the flood; mimicry\n"
      "  in the free fields mostly affects clustering purity.\n");
  return 0;
}
