#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json files the benches emit.

Compares freshly produced bench JSON against the committed baselines in
bench/baselines/ and fails (exit 1) when a tracked higher-is-better metric
(speedup, *_per_sec) regresses by more than REGRESSION_TOLERANCE, or when an
absolute floor (the SIMD acceptance numbers) is not met.

Host awareness:
  * Ratio comparisons against the baseline only run when the fresh run and
    the baseline report the same hardware_concurrency -- wall-clock-derived
    numbers are not comparable across hosts.  Absolute floors on `speedup`
    columns still apply (a speedup is a same-host ratio, so it travels).
  * A runtime_scaling / shard_scaling file tagged "skipped_single_core":
    true contains only the threads=1 / shards=1 row; every scaling
    assertion is skipped.
  * SIMD floors are skipped when the host has no vector unit
    (meta.simd_detected == "scalar").

Usage:
  check_bench_regression.py [--fresh DIR] [--baselines DIR]

Defaults: --fresh . and --baselines <script_dir>/baselines.
"""

import argparse
import json
import pathlib
import sys

# A fresh metric below (1 - REGRESSION_TOLERANCE) * baseline fails the gate.
REGRESSION_TOLERANCE = 0.20

# Higher-is-better row keys eligible for baseline ratio checks.
TRACKED_SUFFIXES = ("_per_sec",)
TRACKED_KEYS = ("speedup",)

# Absolute floors, applied to the fresh run regardless of baseline host:
# {bench: {row_id: {key: floor}}}.  The simd_kernels floors are the PR's
# acceptance criteria: the vector kernels must hold >= 2x single-thread over
# the scalar path on SIMD-capable hosts.
FLOORS = {
    # No floor on kernel_dot: it is memory-bound at batch-column lengths
    # and its scalar specification already runs 4 accumulators, so the
    # vector win is small and noisy (~1.1x measured).
    "simd_kernels": {
        "kernel_kmeans_assign": {"speedup": 2.0},
        "kernel_full_summarize": {"speedup": 2.0},
        "kernel_pair_dots": {"speedup": 1.3},
        "kernel_nearest_point": {"speedup": 1.3},
    },
}


def row_id(bench, row):
    """Stable identity of a result row, independent of row order."""
    for key in row:
        if key.startswith("kernel_"):
            return key
    if "threads" in row:
        return f"threads={int(row['threads'])}"
    # Fall back to the first key=value pair (sweep-style benches).
    first = next(iter(row.items()), ("empty", 0))
    return f"{first[0]}={first[1]:g}"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {row_id(doc["bench"], row): row for row in doc.get("results", [])}
    return doc.get("bench", path.stem), doc.get("meta", {}), rows


def tracked(key):
    return key in TRACKED_KEYS or key.endswith(TRACKED_SUFFIXES)


def check_file(fresh_path, baseline_path, failures):
    bench, fresh_meta, fresh_rows = load(fresh_path)
    ok = lambda msg: print(f"  ok   {bench}: {msg}")
    skip = lambda msg: print(f"  skip {bench}: {msg}")

    simd_capable = fresh_meta.get("simd_detected", "scalar") != "scalar"
    single_core = bool(fresh_meta.get("skipped_single_core", False))

    # Absolute floors first: they do not need a baseline.
    for rid, floors in FLOORS.get(bench, {}).items():
        if not simd_capable:
            skip(f"{rid} floors (host has no vector unit)")
            continue
        row = fresh_rows.get(rid)
        if row is None:
            failures.append(f"{bench}: expected row {rid} missing")
            continue
        for key, floor in floors.items():
            value = row.get(key)
            if value is None:
                failures.append(f"{bench}/{rid}: floor key {key} missing")
            elif value < floor:
                failures.append(
                    f"{bench}/{rid}: {key} = {value:.2f} below floor {floor}")
            else:
                ok(f"{rid} {key} = {value:.2f} >= {floor}")

    if baseline_path is None or not baseline_path.exists():
        skip("no baseline recorded")
        return

    _, base_meta, base_rows = load(baseline_path)

    if single_core and bench in ("runtime_scaling", "shard_scaling"):
        skip("scaling checks (single-core host)")
        return
    if fresh_meta.get("hardware_concurrency") != base_meta.get(
            "hardware_concurrency"):
        skip(
            "baseline ratio checks (hardware_concurrency "
            f"{base_meta.get('hardware_concurrency')} -> "
            f"{fresh_meta.get('hardware_concurrency')})")
        return

    for rid, base_row in base_rows.items():
        fresh_row = fresh_rows.get(rid)
        if fresh_row is None:
            failures.append(f"{bench}: baseline row {rid} missing from fresh run")
            continue
        for key, base_value in base_row.items():
            if not tracked(key) or base_value <= 0:
                continue
            fresh_value = fresh_row.get(key)
            if fresh_value is None:
                failures.append(f"{bench}/{rid}: tracked key {key} disappeared")
                continue
            ratio = fresh_value / base_value
            if ratio < 1.0 - REGRESSION_TOLERANCE:
                failures.append(
                    f"{bench}/{rid}: {key} regressed {base_value:.3g} -> "
                    f"{fresh_value:.3g} ({(1 - ratio) * 100:.0f}%)")
            else:
                ok(f"{rid} {key} {base_value:.3g} -> {fresh_value:.3g}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", default=".", type=pathlib.Path,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--baselines",
                        default=pathlib.Path(__file__).parent / "baselines",
                        type=pathlib.Path)
    args = parser.parse_args()

    fresh_files = sorted(args.fresh.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"error: no BENCH_*.json under {args.fresh}", file=sys.stderr)
        return 1

    failures = []
    for fresh in fresh_files:
        check_file(fresh, args.baselines / fresh.name, failures)

    if failures:
        print("\nPERF REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("\nperf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
