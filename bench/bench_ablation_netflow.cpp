// The §2 status quo: NetFlow-style flow export vs Jaal summaries.
//
// Flow records are the coarse view ISPs already collect.  This bench
// measures, on identical traffic, (a) export bytes, (b) TPR per attack,
// and (c) benign false alarms — showing why flow records are cheap but not
// a substitute for per-packet evidence (flag-OR smearing, missing fields).
#include "common.hpp"

#include "baseline/netflow.hpp"

namespace {

using namespace jaal;
using packet::AttackType;

struct Outcome {
  double tpr = 0.0;
  double fpr = 0.0;
  double bytes_ratio = 0.0;  ///< Export bytes / raw header bytes.
};

Outcome evaluate_netflow(AttackType attack, std::size_t positives,
                         std::size_t negatives) {
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  cfg.attack_intensity_min = 1.0;
  cfg.attack_intensity_max = 1.0;
  const auto& sids = core::sids_for(attack);
  const double scale = core::tau_c_scale_for(cfg);

  Outcome out;
  double export_bytes = 0.0, raw_bytes = 0.0;
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < positives + negatives; ++i) {
    const bool positive = i < positives;
    const core::Trial trial = core::make_trial(
        positive ? attack : AttackType::kNone, cfg, 9000 + i * 13);

    baseline::FlowCache cache;
    for (const auto& batch : trial.monitor_packets) {
      for (const auto& pkt : batch) cache.observe(pkt);
    }
    cache.flush();
    const auto records = cache.drain();
    export_bytes += static_cast<double>(cache.exported_bytes());
    raw_bytes += static_cast<double>(trial.raw_header_bytes);

    const auto alerts = baseline::detect_on_flow_records(
        bench::evaluation_ruleset(), records, scale);
    bool fired = false;
    for (const auto& alert : alerts) {
      for (std::uint32_t sid : sids) fired |= alert.sid == sid;
    }
    if (positive && fired) ++tp;
    if (!positive && fired) ++fp;
  }
  out.tpr = static_cast<double>(tp) / positives;
  out.fpr = static_cast<double>(fp) / negatives;
  out.bytes_ratio = export_bytes / raw_bytes;
  return out;
}

double jaal_tpr(AttackType attack, std::size_t trials) {
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  cfg.attack_intensity_min = 1.0;
  cfg.attack_intensity_max = 1.0;
  const auto engine_cfg =
      bench::operating_point(core::tau_c_scale_for(cfg), true);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const core::Trial trial = core::make_trial(attack, cfg, 9000 + i * 13);
    hits += core::detect(trial, attack, bench::evaluation_ruleset(),
                         engine_cfg)
                ? 1
                : 0;
  }
  return static_cast<double>(hits) / trials;
}

}  // namespace

int main() {
  using namespace jaal;
  bench::print_header(
      "Ablation: NetFlow-style flow export vs Jaal summaries (§2)");
  constexpr std::size_t kPos = 15, kNeg = 15;
  std::printf("  %-24s %-12s %-12s %-14s %-10s\n", "attack", "netflow TPR",
              "netflow FPR", "export/raw %", "Jaal TPR");
  for (AttackType attack :
       {packet::AttackType::kDistributedSynFlood,
        packet::AttackType::kPortScan, packet::AttackType::kSockstress}) {
    const Outcome netflow = evaluate_netflow(attack, kPos, kNeg);
    const double jaal = jaal_tpr(attack, kPos);
    std::printf("  %-24s %-12.2f %-12.2f %-14.1f %-10.2f\n",
                packet::attack_name(attack), netflow.tpr, netflow.fpr,
                100.0 * netflow.bytes_ratio, jaal);
  }
  std::printf(
      "\n  flow export is tiny but the OR-ed flag byte matches completed\n"
      "  handshakes (false alarms) and window-based signatures (Sockstress)\n"
      "  are invisible; summaries keep the per-packet evidence.\n");
  return 0;
}
