// Execution-runtime scaling on the multi-monitor epoch-flush workload.
//
// The serial reproduction flushes every monitor's epoch (SVD + k-means over
// its batch) on one thread, so wall clock grows linearly with monitor
// count — the opposite of the paper's premise that monitors summarize
// independently at ISP scale.  This bench drives the same deployment
// (8 monitors, paper-standard n/r/k) through JaalController::close_epoch at
// 1/2/4/8 runtime threads over identical traffic and reports wall-ms and
// speedup per setting.  Results are bit-identical across thread counts
// (asserted here on the alert/reporting counts; tests/
// test_parallel_equivalence.cpp asserts it on the full output), so any
// speedup is free.  Emits BENCH_runtime_scaling.json alongside the table.
#include <chrono>
#include <span>
#include <thread>

#include "common.hpp"
#include "trace/background.hpp"

namespace {

using namespace jaal;

constexpr std::size_t kMonitors = 8;
constexpr std::size_t kPacketsPerEpoch = 12'000;  // ~1.5k per monitor
constexpr int kReps = 3;

core::JaalConfig deployment(std::size_t threads) {
  core::JaalConfig cfg;
  cfg.summarizer.batch_size = 1500;
  cfg.summarizer.min_batch = 200;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 150;
  cfg.monitor_count = kMonitors;
  cfg.threads = threads;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header(
      "Runtime scaling: 8-monitor epoch flush, 1/2/4/8 threads");
  std::printf("  hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  // One fixed traffic window, ingested identically for every setting.
  trace::BackgroundTraffic gen(trace::trace1_profile(), 17);
  const std::vector<packet::PacketRecord> window =
      trace::take(gen, kPacketsPerEpoch);

  // On a single-core host the >1-thread settings measure contention, not
  // scaling: the curve would be noise and any assertion on it meaningless.
  // Run the threads=1 row only and tag the JSON so downstream tooling
  // (bench/check_bench_regression.py) skips its scaling checks.
  const bool single_core = std::thread::hardware_concurrency() <= 1;
  static const std::size_t kAllSettings[] = {1, 2, 4, 8};
  const std::span<const std::size_t> thread_settings =
      single_core ? std::span<const std::size_t>(kAllSettings, 1)
                  : std::span<const std::size_t>(kAllSettings);
  if (single_core) {
    std::printf("  single-core host: skipping the scaling curve\n");
  }
  std::vector<std::vector<std::pair<std::string, double>>> rows;
  double base_ms = 0.0;
  std::size_t base_reporting = 0;
  std::size_t base_alerts = 0;

  std::printf("  threads   wall-ms   speedup   monitors-reporting\n");
  for (const std::size_t threads : thread_settings) {
    core::JaalController controller(deployment(threads),
                                    bench::evaluation_ruleset());
    double best_ms = 0.0;
    core::EpochResult epoch;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto& pkt : window) controller.ingest(pkt);
      const auto start = std::chrono::steady_clock::now();
      epoch = controller.close_epoch(static_cast<double>(rep));
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (threads == 1) {
      base_ms = best_ms;
      base_reporting = epoch.monitors_reporting;
      base_alerts = epoch.alerts.size();
    } else if (epoch.monitors_reporting != base_reporting ||
               epoch.alerts.size() != base_alerts) {
      std::printf("  DETERMINISM VIOLATION at threads=%zu\n", threads);
      return 1;
    }
    const double speedup = best_ms > 0.0 ? base_ms / best_ms : 0.0;
    std::printf("  %7zu  %8.1f  %8.2fx  %9zu\n", threads, best_ms, speedup,
                epoch.monitors_reporting);
    rows.push_back({{"threads", static_cast<double>(threads)},
                    {"wall_ms", best_ms},
                    {"speedup", speedup}});

    if (const auto stats = controller.runtime_stats()) {
      std::printf("%s", core::describe(*stats).c_str());
    }
  }

  bench::write_bench_json(
      "runtime_scaling", rows,
      single_core ? std::vector<std::pair<std::string, std::string>>{
                        {"skipped_single_core", "true"}}
                  : std::vector<std::pair<std::string, std::string>>{});
  return 0;
}
