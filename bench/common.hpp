// Shared helpers for the evaluation benches (one binary per paper
// table/figure).  Each bench prints the rows/series of its figure; absolute
// numbers come from the simulated substrate, so EXPERIMENTS.md records the
// shape comparison against the paper.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"

// Commit the bench binary was built from; injected by bench/CMakeLists.txt
// at configure time so every BENCH_*.json records its provenance.
#ifndef JAAL_GIT_SHA
#define JAAL_GIT_SHA "unknown"
#endif

namespace jaal::bench {

inline const std::vector<rules::Rule>& evaluation_ruleset() {
  static const std::vector<rules::Rule> kRules = rules::parse_rules(
      rules::default_ruleset_text(), core::evaluation_rule_vars());
  return kRules;
}

/// Paper-standard trial configuration: n-packet batches, rank r, k
/// centroids, M monitors, Trace 1 background, 10% attack injection.
inline core::TrialConfig trial_config(std::size_t n, std::size_t r,
                                      std::size_t k, std::size_t monitors = 3,
                                      std::uint64_t seed = 1) {
  core::TrialConfig cfg;
  cfg.summarizer.batch_size = n;
  cfg.summarizer.min_batch = n / 2;
  cfg.summarizer.rank = r;
  cfg.summarizer.centroids = k;
  cfg.monitor_count = monitors;
  cfg.profile = trace::trace1_profile();
  cfg.seed = seed;
  return cfg;
}

/// The tau_d sweep used for ROC curves.
inline std::vector<double> roc_taus() {
  return {0.0005, 0.001, 0.002, 0.004, 0.008, 0.015, 0.03, 0.06, 0.12};
}

/// The paper's chosen per-attack operating point (strict/loose pair for the
/// feedback loop; tau_d1 == tau_d2 when feedback is off).
inline inference::EngineConfig operating_point(double tau_c_scale,
                                               bool feedback) {
  inference::EngineConfig cfg;
  cfg.default_thresholds = feedback
                               ? inference::ThresholdPair{0.008, 0.03}
                               : inference::ThresholdPair{0.015, 0.015};
  cfg.feedback_enabled = feedback;
  cfg.tau_c_scale = tau_c_scale;
  return cfg;
}

/// Machine-readable companion to a bench's human-readable table: writes
/// BENCH_<name>.json in the working directory (or `path` when given) with
/// one object per row, so the perf trajectory is trackable across PRs by
/// diffing/plotting the JSON instead of scraping stdout.  Row order and key
/// order are preserved.  A "meta" object records the build commit and the
/// machine's hardware concurrency, so a perf delta in the trajectory can be
/// attributed to code vs. host (bench/check_bench_regression.py keys off
/// it).  `extra_meta` appends raw JSON values under additional meta keys —
/// the value string is emitted verbatim, so pass `"true"`, `"3"`, or
/// `"\"avx2\""` as appropriate.
inline void write_bench_json(
    const std::string& bench,
    const std::vector<std::vector<std::pair<std::string, double>>>& rows,
    const std::vector<std::pair<std::string, std::string>>& extra_meta = {},
    const std::string& path = "") {
  const std::string file = path.empty() ? "BENCH_" + bench + ".json" : path;
  std::FILE* f = std::fopen(file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", file.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench.c_str());
  std::fprintf(f,
               "  \"meta\": {\"git_sha\": \"%s\", "
               "\"hardware_concurrency\": %u",
               JAAL_GIT_SHA, std::thread::hardware_concurrency());
  for (const auto& [key, raw_value] : extra_meta) {
    std::fprintf(f, ", \"%s\": %s", key.c_str(), raw_value.c_str());
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "    {");
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      std::fprintf(f, "%s\"%s\": %.6g", c == 0 ? "" : ", ",
                   rows[r][c].first.c_str(), rows[r][c].second);
    }
    std::fprintf(f, "}%s\n", r + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", file.c_str());
}

inline void print_header(const std::string& title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

inline void print_roc(const core::RocCurve& curve) {
  const core::RocCurve env = curve.envelope();
  std::printf("  %-24s tau_d    tau_c_x   FPR     TPR\n", curve.label.c_str());
  for (const auto& p : env.points) {
    std::printf("  %-24s %.4f  %6.2f  %6.3f  %6.3f\n", "", p.tau_d,
                p.tau_c_scale, p.fpr, p.tpr);
  }
  std::printf("  %-24s AUC = %.3f, TPR@FPR<=0.10 = %.3f\n", "", curve.auc(),
              curve.tpr_at_fpr(0.10));
}

}  // namespace jaal::bench
