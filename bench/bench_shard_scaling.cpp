// Inference-tier scaling across engine shard counts.
//
// One InferenceEngine's matching cost grows linearly with aggregate rows,
// i.e. with monitor count — the tier's reason to exist.  This bench builds
// one fixed 16-monitor epoch of summaries (SVD + k-means paid once, outside
// the timed region), then drives the tier's per-epoch path — begin_epoch,
// add_summary x16, aggregate_epoch, infer_epoch — at 1/2/4/8 shards over
// identical bytes and reports wall-ms and speedup per setting.  The exact
// merge is byte-identical across shard counts (asserted here on the alert
// fingerprint; tests/test_shard_equivalence.cpp asserts it on the full
// store), so any speedup is free.  Emits BENCH_shard_scaling.json.
#include <algorithm>
#include <chrono>
#include <span>
#include <sstream>
#include <thread>

#include "attack/generators.hpp"
#include "common.hpp"
#include "core/monitor.hpp"
#include "inference/alert_json.hpp"
#include "shard/tier.hpp"
#include "trace/background.hpp"
#include "trace/mix.hpp"

namespace {

using namespace jaal;

constexpr std::size_t kMonitors = 16;
constexpr std::size_t kPacketsPerMonitor = 1'500;
constexpr int kReps = 3;

summarize::SummarizerConfig summarizer_config() {
  summarize::SummarizerConfig cfg;
  cfg.batch_size = kPacketsPerMonitor;
  cfg.min_batch = 300;
  cfg.rank = 12;
  cfg.centroids = 200;
  return cfg;
}

/// One epoch of summaries: background traffic plus a distributed SYN flood,
/// packets dealt round-robin across the monitors.  Seeded, so every shard
/// setting sees the same bytes.
std::vector<summarize::MonitorSummary> build_summaries() {
  trace::BackgroundTraffic background(trace::trace1_profile(), 17);
  attack::AttackConfig atk;
  atk.victim_ip = core::evaluation_victim_ip();
  atk.packets_per_second = 10000.0;
  atk.start_time = 0.0;
  atk.seed = 11;
  attack::DistributedSynFlood flood(atk);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  std::vector<core::Monitor> monitors;
  monitors.reserve(kMonitors);
  for (std::size_t m = 0; m < kMonitors; ++m) {
    monitors.emplace_back(static_cast<summarize::MonitorId>(m),
                          summarizer_config());
    monitors.back().begin_epoch(0);
  }
  for (std::size_t i = 0; i < kMonitors * kPacketsPerMonitor; ++i) {
    monitors[i % kMonitors].observe(mix.next());
  }
  std::vector<summarize::MonitorSummary> summaries;
  for (core::Monitor& m : monitors) {
    if (auto s = m.flush_epoch()) summaries.push_back(std::move(*s));
  }
  return summaries;
}

}  // namespace

int main() {
  bench::print_header(
      "Shard scaling: 16-monitor inference epoch, 1/2/4/8 engine shards");
  std::printf("  hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  const std::vector<summarize::MonitorSummary> summaries = build_summaries();
  std::printf("  %zu summaries per epoch (n=%zu, r=12, k=200)\n",
              summaries.size(), kPacketsPerMonitor);

  // On a single-core host the shards run back-to-back on one thread: the
  // curve would measure scheduling overhead, not scaling.  Run the shards=1
  // row only and tag the JSON so bench/check_bench_regression.py skips its
  // scaling checks (same contract as bench_runtime_scaling).
  const bool single_core = std::thread::hardware_concurrency() <= 1;
  static const std::size_t kAllSettings[] = {1, 2, 4, 8};
  const std::span<const std::size_t> shard_settings =
      single_core ? std::span<const std::size_t>(kAllSettings, 1)
                  : std::span<const std::size_t>(kAllSettings);
  if (single_core) {
    std::printf("  single-core host: skipping the scaling curve\n");
  }

  const auto pool = std::make_shared<runtime::ThreadPool>(
      std::min<std::size_t>(std::thread::hardware_concurrency(), 8));
  // Feedback needs raw packets (a deployment concern, not a tier-scaling
  // one); the timed region is pure summary-plane work.
  const inference::EngineConfig ecfg = bench::operating_point(1.0, false);

  std::vector<std::vector<std::pair<std::string, double>>> rows;
  double base_ms = 0.0;
  std::string base_fingerprint;
  std::size_t base_alerts = 0;

  std::printf("  shards   wall-ms   speedup   aggregate-rows   alerts\n");
  for (const std::size_t shards : shard_settings) {
    shard::ShardingConfig sharding;
    sharding.shards = shards;
    shard::InferenceTier tier(sharding, bench::evaluation_ruleset(), ecfg);
    tier.set_pool(pool);

    double best_ms = 0.0;
    std::size_t agg_rows = 0;
    std::string fingerprint;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      tier.begin_epoch(static_cast<std::uint64_t>(rep));
      for (const auto& s : summaries) (void)tier.add_summary(s);
      const inference::AggregatedSummary& agg = tier.aggregate_epoch();
      const auto alerts =
          tier.infer_epoch([](summarize::MonitorId,
                              const std::vector<std::size_t>&) {
            return inference::RawFetch{std::nullopt};
          });
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      agg_rows = agg.rows();
      std::ostringstream fp;
      for (const auto& a : alerts) {
        fp << inference::alert_to_json(a, 0.0) << '\n';
      }
      fingerprint = fp.str();
    }

    if (shards == 1) {
      base_ms = best_ms;
      base_fingerprint = fingerprint;
      base_alerts = fingerprint.empty()
                        ? 0
                        : static_cast<std::size_t>(
                              std::count(fingerprint.begin(),
                                         fingerprint.end(), '\n'));
    } else if (fingerprint != base_fingerprint) {
      std::printf("  DETERMINISM VIOLATION at shards=%zu\n", shards);
      return 1;
    }
    const double speedup = best_ms > 0.0 ? base_ms / best_ms : 0.0;
    std::printf("  %6zu  %8.2f  %8.2fx  %14zu  %7zu\n", shards, best_ms,
                speedup, agg_rows, base_alerts);
    rows.push_back({{"shards", static_cast<double>(shards)},
                    {"wall_ms", best_ms},
                    {"speedup", speedup}});
  }
  if (base_alerts == 0) {
    std::printf("  WORKLOAD TOO QUIET: no alerts to fingerprint\n");
    return 1;
  }

  bench::write_bench_json(
      "shard_scaling", rows,
      single_core ? std::vector<std::pair<std::string, std::string>>{
                        {"skipped_single_core", "true"}}
                  : std::vector<std::pair<std::string, std::string>>{});
  return 0;
}
