// Fig. 5: ROC curves per attack while varying the retained rank
// r in {10, 12, 15}; batch n = 2000, k = 500, Trace 1, topology 1.
//
// Paper shape: r = 12 performs about as well as r = 15 (the top 12 singular
// values carry nearly all the information, Fig. 10); dropping to r = 10
// costs accuracy across attacks.
#include "common.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Fig. 5: ROC vs retained rank r (n=2000, k=500, Trace 1)");

  constexpr std::size_t kPositives = 16;
  constexpr std::size_t kNegatives = 16;
  const auto taus = bench::roc_taus();

  for (std::size_t r : {10u, 12u, 15u}) {
    std::printf("\n--- r = %zu ---\n", r);
    const core::TrialConfig cfg = bench::trial_config(2000, r, 500);
    const auto trials = core::make_trial_set(core::evaluation_attacks(),
                                             kPositives, kNegatives, cfg);
    const double scale = core::tau_c_scale_for(cfg);
    for (packet::AttackType attack : core::evaluation_attacks()) {
      const core::RocCurve curve = core::roc_sweep(
          trials, attack, bench::evaluation_ruleset(), taus,
          core::default_tau_c_scales(), scale);
      bench::print_roc(curve);
    }
  }
  return 0;
}
