// Fig. 9: time-averaged load per monitor group under the three flow
// assignment policies (topology 1, M = 25 monitors, update period P = 2 s).
//
// Paper shape: greedy closely mirrors the (impractical, true-weight) Robin
// Hood reference — deviations ~10% on average, ~14% worst case — while
// random assignment balances poorly.
#include "common.hpp"

#include <cmath>

#include "assign/assigner.hpp"
#include "assign/flow_groups.hpp"
#include "netsim/topology.hpp"

int main() {
  using namespace jaal;
  using namespace jaal::assign;
  bench::print_header(
      "Fig. 9: load across monitor groups (topology 1, M=25, P=2s)");

  // Derive monitor groups from actual routing: place 25 monitors on
  // topology 1, route random edge pairs, and group flows by the set of
  // monitors their shortest path crosses.
  const netsim::Topology topo =
      netsim::make_isp_topology(netsim::abovenet_profile(), 1);
  const auto sites = topo.default_monitor_sites(25);
  const auto edges = topo.edge_nodes();
  std::mt19937_64 rng(5);

  std::vector<std::pair<netsim::NodeId, netsim::NodeId>> od_pairs;
  for (int i = 0; i < 400; ++i) {
    const auto src = edges[rng() % edges.size()];
    const auto dst = edges[rng() % edges.size()];
    if (src != dst) od_pairs.emplace_back(src, dst);
  }
  RoutedGroups routed = derive_monitor_groups(topo, sites, od_pairs);
  // Keep groups with real assignment freedom (>= 2 monitors), at most 14.
  std::vector<MonitorGroup> groups;
  for (auto& g : routed.groups) {
    if (g.monitors.size() >= 2 && groups.size() < 14) {
      groups.push_back(std::move(g));
    }
  }
  std::printf("  %zu monitor groups from routed paths (%zu OD pairs, "
              "%zu uncovered)\n",
              groups.size(), od_pairs.size(), routed.uncovered_pairs());

  // Flow workload over those groups.
  WorkloadConfig wcfg;
  wcfg.monitor_count = 25;
  wcfg.group_count = groups.size();
  wcfg.flow_count = 8000;
  Workload workload = make_workload(wcfg);
  workload.groups = groups;  // replace synthetic groups with routed ones
  for (auto& flow : workload.flows) flow.group %= groups.size();

  GreedyAssigner greedy;
  RobinHoodAssigner robin_hood(25);
  RandomAssigner random_policy(3);

  const auto g = simulate_assignment(greedy, workload.flows, workload.groups,
                                     25, 2.0);
  const auto rh = simulate_assignment(robin_hood, workload.flows,
                                      workload.groups, 25, 0.0);
  const auto rnd = simulate_assignment(random_policy, workload.flows,
                                       workload.groups, 25, 2.0);

  std::printf("\n  %-8s %-14s %-14s %-14s\n", "group j", "greedy",
              "robin hood", "random");
  double dev_sum = 0.0, dev_worst = 0.0;
  for (std::size_t j = 0; j < workload.groups.size(); ++j) {
    std::printf("  %-8zu %-14.1f %-14.1f %-14.1f\n", j, g.group_avg_load[j],
                rh.group_avg_load[j], rnd.group_avg_load[j]);
    if (rh.group_avg_load[j] > 1.0) {
      const double dev = std::abs(g.group_avg_load[j] - rh.group_avg_load[j]) /
                         rh.group_avg_load[j];
      dev_sum += dev;
      dev_worst = std::max(dev_worst, dev);
    }
  }
  std::printf(
      "\n  greedy vs robin hood: avg dev %.1f%%, worst %.1f%% "
      "(paper: 10%% avg, 14%% worst)\n",
      100.0 * dev_sum / workload.groups.size(), 100.0 * dev_worst);
  std::printf("  max time-avg monitor load: greedy %.1f, robin hood %.1f, "
              "random %.1f\n",
              g.max_time_avg_load, rh.max_time_avg_load,
              rnd.max_time_avg_load);
  return 0;
}
