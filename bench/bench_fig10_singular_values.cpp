// Fig. 10: magnitudes of the singular values of a packet matrix (n = 1000).
//
// Paper shape: a drastic drop beyond the top ~14 values — backbone header
// matrices have low latent rank, which is what makes rank-12 summaries
// nearly lossless (and r = 12 the sweet spot of Fig. 5).
#include "common.hpp"

#include "linalg/svd.hpp"
#include "summarize/normalize.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Fig. 10: singular values of a normalized packet matrix (n=1000)");

  trace::BackgroundTraffic gen(trace::trace1_profile(), 42);
  const auto batch = trace::take(gen, 1000);
  const linalg::Matrix x_bar = summarize::to_normalized_matrix(batch);
  const linalg::SvdResult svd = linalg::svd(x_bar);

  double total_energy = 0.0;
  for (double s : svd.sigma) total_energy += s * s;

  std::printf("  %-6s %-14s %-16s %-12s\n", "index", "sigma_i",
              "sigma_i/sigma_1", "cum.energy%");
  double cum = 0.0;
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    cum += svd.sigma[i] * svd.sigma[i];
    std::printf("  %-6zu %-14.4f %-16.6f %-12.2f\n", i + 1, svd.sigma[i],
                svd.sigma[i] / svd.sigma[0], 100.0 * cum / total_energy);
  }
  std::printf("\n  rank for 90%% energy: %zu, for 99%%: %zu, for 99.9%%: %zu\n",
              svd.rank_for_energy(0.90), svd.rank_for_energy(0.99),
              svd.rank_for_energy(0.999));
  return 0;
}
