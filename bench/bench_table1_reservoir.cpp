// Table 1: Jaal vs reservoir sampling at matched communication budgets.
//
// Paper numbers (TPR): Distributed SYN flood 54% vs 99%, Sock Stress 60% vs
// 98%, SSH brute force 42% vs 97%, Sockstress (Trace 2) 56% vs 94%.
// The sampler keeps 250 of every 1000 packets per monitor (the budget Jaal
// uses at r=12, k=200, n=1000) and detection runs Snort-style matching on
// the shipped sample with thresholds scaled by the sampling ratio.
#include "common.hpp"

#include "baseline/reservoir.hpp"

namespace {

using namespace jaal;
using packet::AttackType;

struct Row {
  const char* name;
  AttackType attack;
  trace::TraceProfile profile;
};

/// Jaal TPR: fraction of positive trials detected at the paper operating
/// point (r=12, k=200, n=1000).
double jaal_tpr(AttackType attack, const trace::TraceProfile& profile,
                std::size_t trials_count) {
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  cfg.profile = profile;
  cfg.attack_intensity_min = 1.0;  // paper: attacks run at the 10% cap
  cfg.attack_intensity_max = 1.0;
  std::size_t hits = 0;
  // The paper's headline operating point includes the feedback loop.
  const auto engine_cfg =
      bench::operating_point(core::tau_c_scale_for(cfg), true);
  for (std::size_t i = 0; i < trials_count; ++i) {
    const core::Trial trial = core::make_trial(attack, cfg, 1000 + i * 17);
    hits += core::detect(trial, attack, bench::evaluation_ruleset(),
                         engine_cfg)
                ? 1
                : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(trials_count);
}

/// Reservoir TPR: same traffic, each monitor ships a 250-sample of its
/// 1000-packet batch; detection = Snort matcher over the union of samples.
/// `compensated` selects the favorable treatment where the analyst scales
/// thresholds down by the known sampling ratio; the naive treatment applies
/// the thresholds as configured (counts undershoot by the sampling factor).
double reservoir_tpr(AttackType attack, const trace::TraceProfile& profile,
                     std::size_t trials_count, bool compensated) {
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  cfg.profile = profile;
  cfg.attack_intensity_min = 1.0;  // paper: attacks run at the 10% cap
  cfg.attack_intensity_max = 1.0;
  const rules::RawMatcher matcher(bench::evaluation_ruleset());
  const auto& sids = core::sids_for(attack);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < trials_count; ++i) {
    const core::Trial trial = core::make_trial(attack, cfg, 1000 + i * 17);
    // One reservoir per monitor, as the paper configures it.
    std::vector<packet::PacketRecord> shipped;
    double scale = 1.0;
    for (std::size_t m = 0; m < trial.monitor_packets.size(); ++m) {
      baseline::ReservoirSampler sampler(250, 7000 + i * 31 + m);
      for (const auto& pkt : trial.monitor_packets[m]) sampler.add(pkt);
      shipped.insert(shipped.end(), sampler.sample().begin(),
                     sampler.sample().end());
      scale = sampler.scale_factor();
    }
    const double threshold_scale =
        compensated ? core::tau_c_scale_for(cfg) / scale
                    : core::tau_c_scale_for(cfg);
    const auto alerts = matcher.analyze(shipped, 0.0, threshold_scale);
    bool detected = false;
    for (const auto& alert : alerts) {
      for (std::uint32_t sid : sids) detected |= alert.sid == sid;
    }
    hits += detected ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(trials_count);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1: Reservoir sampling vs Jaal (TPR at matched comm budget)\n"
      "paper: DSYN 54%/99%, SockStress 60%/98%, SSH 42%/97%, "
      "Sockstress(T2) 56%/94%");
  const Row rows[] = {
      {"Distributed Syn Flood", AttackType::kDistributedSynFlood,
       trace::trace1_profile()},
      {"Sock Stress", AttackType::kSockstress, trace::trace1_profile()},
      {"SSH Brute Force", AttackType::kSshBruteForce, trace::trace1_profile()},
      {"Sockstress (Trace 2)", AttackType::kSockstress,
       trace::trace2_profile()},
  };
  constexpr std::size_t kTrials = 25;
  std::printf("  %-24s %-18s %-22s %-8s\n", "Attack", "Reservoir (naive)",
              "Reservoir (compensated)", "Jaal");
  for (const Row& row : rows) {
    const double naive =
        reservoir_tpr(row.attack, row.profile, kTrials, false);
    const double compensated =
        reservoir_tpr(row.attack, row.profile, kTrials, true);
    const double jaal = jaal_tpr(row.attack, row.profile, kTrials);
    std::printf("  %-24s %-18.0f %-22.0f %-8.0f\n", row.name, naive * 100.0,
                compensated * 100.0, jaal * 100.0);
  }
  std::printf(
      "\n  naive: thresholds as configured (sampled counts undershoot);\n"
      "  compensated: analyst rescales thresholds by the known sampling\n"
      "  ratio.  Jaal needs neither and dominates the volumetric attacks.\n");
  return 0;
}
