// SIMD kernel speedups: scalar vs the best dispatch level on this host.
//
// One row per kernel of linalg/simd.hpp plus two end-to-end rows (k-means
// assignment, full summarize), each timed with the dispatch pinned to
// scalar and then to detected().  Every row carries a `kernel_<name>` key
// so bench/check_bench_regression.py can match rows across runs without
// relying on order, and the speedup column is what the CI regression gate
// floors.  Kernel outputs are checksummed and compared across levels — a
// determinism violation (any bit difference) fails the bench outright,
// because the whole design contract is "SIMD changes nothing but time".
#include <chrono>
#include <cmath>
#include <cstring>
#include <random>

#include "common.hpp"
#include "linalg/simd.hpp"
#include "linalg/soa.hpp"
#include "summarize/kmeans.hpp"
#include "summarize/summarizer.hpp"
#include "trace/background.hpp"

namespace {

using namespace jaal;
namespace simd = linalg::simd;

constexpr std::size_t kBatch = 1500;   // n: paper-standard epoch batch
constexpr std::size_t kDims = 18;      // p: header fields
constexpr std::size_t kCentroids = 150;
constexpr int kReps = 5;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-kReps wall time of `body` (which must fold its result into a
/// checksum to defeat dead-code elimination).
template <typename F>
double time_best_ms(F&& body) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double start = now_ms();
    body();
    const double ms = now_ms() - start;
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

volatile double g_sink = 0.0;  // checksum sink the optimizer cannot drop

struct LevelTimes {
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  double scalar_check = 0.0;
  double simd_check = 0.0;
};

/// Times `body` (returning a checksum) at scalar and at detected() level.
template <typename F>
LevelTimes time_levels(F&& body) {
  LevelTimes t;
  simd::force_level(simd::Level::kScalar);
  t.scalar_ms = time_best_ms([&] { g_sink = body(); });
  t.scalar_check = g_sink;
  simd::force_level(simd::detected());
  t.simd_ms = time_best_ms([&] { g_sink = body(); });
  t.simd_check = g_sink;
  return t;
}

bool report(const char* name, const LevelTimes& t, double items_per_call,
            std::vector<std::vector<std::pair<std::string, double>>>& rows) {
  const double speedup = t.simd_ms > 0.0 ? t.scalar_ms / t.simd_ms : 0.0;
  const double per_sec =
      t.simd_ms > 0.0 ? items_per_call / (t.simd_ms / 1e3) : 0.0;
  const bool identical =
      std::memcmp(&t.scalar_check, &t.simd_check, sizeof(double)) == 0;
  std::printf("  %-22s %9.3f  %9.3f  %6.2fx  %12.3g  %s\n", name, t.scalar_ms,
              t.simd_ms, speedup, per_sec, identical ? "ok" : "MISMATCH");
  rows.push_back({{std::string("kernel_") + name, 1.0},
                  {"scalar_ms", t.scalar_ms},
                  {"simd_ms", t.simd_ms},
                  {"speedup", speedup},
                  {"items_per_sec", per_sec}});
  return identical;
}

}  // namespace

int main() {
  bench::print_header("SIMD kernels: scalar vs best dispatch level");
  std::printf("  detected level: %s (active: %s)\n",
              std::string(simd::level_name(simd::detected())).c_str(),
              std::string(simd::level_name(simd::active())).c_str());
  std::printf("  %-22s scalar-ms    simd-ms  speedup  items/s       check\n",
              "kernel");

  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Column-pair inputs for the Jacobi kernels: one long column pair.
  constexpr std::size_t kColLen = kBatch;
  constexpr int kColIters = 2000;
  std::vector<double> col_a(kColLen), col_b(kColLen);
  for (double& v : col_a) v = unit(rng);
  for (double& v : col_b) v = unit(rng);

  // SoA batch + centroids for the k-means kernels.
  linalg::Matrix batch_rows(kBatch, kDims);
  for (double& v : batch_rows.data()) v = unit(rng);
  const linalg::SoaMatrix batch = linalg::SoaMatrix::from_rows(batch_rows);
  linalg::Matrix centroids(kCentroids, kDims);
  for (double& v : centroids.data()) v = unit(rng);
  const linalg::SoaMatrix centroids_dim_major =
      linalg::SoaMatrix::from_rows(centroids);

  std::vector<std::vector<std::pair<std::string, double>>> rows;
  bool all_identical = true;

  all_identical &= report(
      "dot",
      time_levels([&] {
        double acc = 0.0;
        for (int i = 0; i < kColIters; ++i) {
          acc += simd::dot(col_a.data(), col_b.data(), kColLen);
        }
        return acc;
      }),
      static_cast<double>(kColLen) * kColIters, rows);

  all_identical &= report(
      "pair_dots",
      time_levels([&] {
        double acc = 0.0;
        for (int i = 0; i < kColIters; ++i) {
          const simd::PairDots d =
              simd::pair_dots(col_a.data(), col_b.data(), kColLen);
          acc += d.alpha + d.beta + d.gamma;
        }
        return acc;
      }),
      static_cast<double>(kColLen) * kColIters, rows);

  all_identical &= report(
      "rotate_pair",
      time_levels([&] {
        std::vector<double> a = col_a;
        std::vector<double> b = col_b;
        for (int i = 0; i < kColIters; ++i) {
          simd::rotate_pair(a.data(), b.data(), kColLen, 0.8, 0.6);
        }
        return a[kColLen / 2] + b[kColLen / 3];
      }),
      static_cast<double>(kColLen) * kColIters, rows);

  constexpr int kAssignIters = 50;
  std::vector<std::size_t> assignment(kBatch);
  std::vector<double> best_dist(kBatch);
  all_identical &= report(
      "kmeans_assign",
      time_levels([&] {
        double acc = 0.0;
        for (int i = 0; i < kAssignIters; ++i) {
          summarize::assign_to_centroids(batch, centroids, assignment,
                                         best_dist, nullptr);
          acc += best_dist[i % kBatch] +
                 static_cast<double>(assignment[i % kBatch]);
        }
        return acc;
      }),
      static_cast<double>(kBatch) * kAssignIters, rows);

  constexpr int kPointIters = 20000;
  all_identical &= report(
      "nearest_point",
      time_levels([&] {
        double acc = 0.0;
        for (int i = 0; i < kPointIters; ++i) {
          const simd::Nearest n = simd::nearest_point(
              centroids_dim_major.data(), centroids_dim_major.stride(), kDims,
              kCentroids, batch_rows.row(i % kBatch).data());
          acc += n.dist + static_cast<double>(n.index);
        }
        return acc;
      }),
      static_cast<double>(kPointIters), rows);

  // End-to-end: the full summarize pipeline (normalize + SVD + k-means) on
  // a realistic traffic batch.  This is the acceptance row: the CI gate
  // floors its speedup at 2x on SIMD-capable hosts.
  trace::BackgroundTraffic gen(trace::trace1_profile(), 7);
  const auto packets = trace::take(gen, kBatch);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = kBatch;
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = kCentroids;
  all_identical &= report(
      "full_summarize",
      time_levels([&] {
        summarize::Summarizer summarizer(cfg);  // same seed both levels
        const auto out = summarizer.summarize(packets);
        const auto bytes = summarize::serialize(out.summary);
        double acc = static_cast<double>(bytes.size());
        for (std::size_t i = 0; i < bytes.size(); i += 37) {
          acc += static_cast<double>(bytes[i]);
        }
        return acc;
      }),
      static_cast<double>(kBatch), rows);

  simd::force_level(simd::detected());
  if (!all_identical) {
    std::printf("  DETERMINISM VIOLATION: scalar and SIMD checksums differ\n");
    return 1;
  }

  bench::write_bench_json(
      "simd_kernels", rows,
      {{"simd_detected",
        "\"" + std::string(simd::level_name(simd::detected())) + "\""}});
  return 0;
}
