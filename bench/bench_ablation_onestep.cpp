// Ablation: the paper's two-step reduction vs a joint one-step objective.
//
// §4 argues a single-step reduction of both modes "is computationally hard
// from an optimization point of view" and adopts SVD-then-k-means.  This
// bench implements the natural joint alternative — alternating minimization
// of || X - B R ||_F (cluster assignments B, rank-constrained centroids R),
// i.e. k-means and rank projection interleaved — and compares quality and
// cost against the paper's pipeline at equal (r, k).
#include "common.hpp"

#include <chrono>

#include "linalg/svd.hpp"
#include "summarize/kmeans.hpp"
#include "summarize/normalize.hpp"

namespace {

using namespace jaal;

double quantization_error(const linalg::Matrix& x,
                          const linalg::Matrix& centroids,
                          const std::vector<std::size_t>& assignment) {
  double total = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    const auto c = centroids.row(assignment[i]);
    double err = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double d = row[j] - c[j];
      err += d * d;
    }
    total += err;
  }
  return total / static_cast<double>(x.rows());
}

/// Assigns every row of x to its nearest centroid.
std::vector<std::size_t> assign_rows(const linalg::Matrix& x,
                                     const linalg::Matrix& centroids) {
  std::vector<std::size_t> assignment(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    double best = 1e300;
    for (std::size_t c = 0; c < centroids.rows(); ++c) {
      const auto cr = centroids.row(c);
      double d = 0.0;
      for (std::size_t j = 0; j < x.cols(); ++j) {
        const double diff = row[j] - cr[j];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        assignment[i] = c;
      }
    }
  }
  return assignment;
}

}  // namespace

int main() {
  using namespace jaal;
  bench::print_header(
      "Ablation: two-step (SVD then k-means, §4) vs joint alternating "
      "minimization");

  trace::BackgroundTraffic gen(trace::trace1_profile(), 23);
  const auto packets = trace::take(gen, 1000);
  const linalg::Matrix x = summarize::to_normalized_matrix(packets);
  constexpr std::size_t kRank = 12;
  constexpr std::size_t kCentroids = 200;

  // --- Two-step (the paper's pipeline).
  auto t0 = std::chrono::steady_clock::now();
  const auto svd = linalg::truncated_svd(x, kRank);
  const linalg::Matrix reduced = svd.reconstruct();
  std::mt19937_64 rng(1);
  const auto km = summarize::kmeans(reduced, kCentroids, rng);
  auto t1 = std::chrono::steady_clock::now();
  const double two_step_err = quantization_error(x, km.centroids,
                                                 km.assignment);
  const double two_step_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  // --- Joint: alternate k-means on X with rank-r projection of the
  // centroid matrix (the natural relaxation of the §4.3 objective with the
  // rank constraint on R).
  t0 = std::chrono::steady_clock::now();
  std::mt19937_64 rng2(1);
  summarize::KMeansOptions seed_opts;
  seed_opts.max_iterations = 1;
  auto joint = summarize::kmeans(x, kCentroids, rng2, seed_opts);
  linalg::Matrix centroids = joint.centroids;
  double joint_err = 0.0;
  int joint_rounds = 0;
  for (int round = 0; round < 8; ++round) {
    ++joint_rounds;
    // Rank-project the centroid matrix.
    const auto csvd = linalg::truncated_svd(centroids, kRank);
    centroids = csvd.reconstruct();
    // Reassign and recompute means on the raw data.
    const auto assignment = assign_rows(x, centroids);
    linalg::Matrix sums(kCentroids, x.cols());
    std::vector<std::uint64_t> counts(kCentroids, 0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const auto row = x.row(i);
      auto s = sums.row(assignment[i]);
      for (std::size_t j = 0; j < x.cols(); ++j) s[j] += row[j];
      ++counts[assignment[i]];
    }
    double moved = 0.0;
    for (std::size_t c = 0; c < kCentroids; ++c) {
      if (counts[c] == 0) continue;
      auto cr = centroids.row(c);
      for (std::size_t j = 0; j < x.cols(); ++j) {
        const double updated = sums.row(c)[j] / counts[c];
        moved = std::max(moved, std::abs(updated - cr[j]));
        cr[j] = updated;
      }
    }
    const double err =
        quantization_error(x, centroids, assign_rows(x, centroids));
    joint_err = err;
    if (moved < 1e-6) break;
  }
  t1 = std::chrono::steady_clock::now();
  const double joint_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("  %-34s %-14s %-12s\n", "method", "MSE vs raw X", "time (ms)");
  std::printf("  %-34s %-14.6f %-12.1f\n", "two-step (SVD -> k-means++)",
              two_step_err, two_step_ms);
  std::printf("  %-34s %-14.6f %-12.1f  (%d rounds)\n",
              "joint alternating minimization", joint_err, joint_ms,
              joint_rounds);
  std::printf(
      "\n  the joint objective needs repeated SVDs of the centroid matrix\n"
      "  and full reassignments per round for %s quality — supporting the\n"
      "  paper's choice of the simple two-step pipeline.\n",
      joint_err < two_step_err * 0.95 ? "modestly better"
                                      : "no better");
  return 0;
}
