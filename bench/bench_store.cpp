// Store bench: append and replay throughput of the src/store persistence
// layer.  A short live run seeds realistic summaries; the bench then
// streams thousands of epochs of them through a DeploymentStore (append +
// commit protocol, shard rolls included), scans the resulting log
// zero-copy, and replays it through the inference engine.
//
//   $ ./bench_store
//
// Emits BENCH_store.json; the *_per_sec keys are tracked against
// bench/baselines/BENCH_store.json by bench/check_bench_regression.py.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "common.hpp"
#include "core/controller.hpp"
#include "store/replay.hpp"
#include "store/store.hpp"
#include "trace/background.hpp"

namespace {

using namespace jaal;
namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Realistic summaries to stream: whatever a short live deployment stored.
std::vector<summarize::MonitorSummary> seed_summaries(const fs::path& dir) {
  core::JaalConfig cfg;
  cfg.monitor_count = 3;
  cfg.epoch_seconds = 0.04;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.engine.default_thresholds = {0.02, 0.02};
  cfg.engine.feedback_enabled = false;
  cfg.store_dir = dir.string();
  core::JaalController controller(cfg, bench::evaluation_ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 31);
  (void)controller.run(gen, 0.3);

  std::vector<summarize::MonitorSummary> out;
  store::DeploymentStore reader({dir.string(), 64}, /*writable=*/false);
  reader.each_summary([&](std::uint64_t, std::uint32_t,
                          const summarize::MonitorSummary& s) {
    out.push_back(s);
    return true;
  });
  return out;
}

}  // namespace

int main() {
  bench::print_header("store: append / scan / replay throughput");

  const fs::path base =
      fs::temp_directory_path() / "jaal_bench_store";
  fs::remove_all(base);
  fs::create_directories(base);

  const auto corpus = seed_summaries(base / "seed");
  if (corpus.empty()) {
    std::fprintf(stderr, "seed run produced no summaries\n");
    return 1;
  }
  constexpr std::size_t kEpochs = 2000;
  constexpr std::size_t kPerEpoch = 3;
  std::uint64_t payload_bytes = 0;
  for (const auto& s : corpus) {
    payload_bytes += summarize::serialize(
                         s, summarize::WirePrecision::kFloat64)
                         .size();
  }
  payload_bytes = payload_bytes / corpus.size() * kEpochs * kPerEpoch;

  // ---- append: the per-epoch hot path, commit record and rolls included.
  const fs::path big = base / "big";
  double append_s = 0.0;
  {
    store::DeploymentStore store({big.string(), 64}, /*writable=*/true);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t next = 0;
    for (std::size_t e = 0; e < kEpochs; ++e) {
      for (std::size_t m = 0; m < kPerEpoch; ++m) {
        store.put_summary(e, corpus[next++ % corpus.size()]);
      }
      store.commit_epoch({e, static_cast<double>(e), 2000, 1.0, 0.0});
    }
    store.sync();
    append_s = seconds_since(t0);
    if (store.failed()) {
      std::fprintf(stderr, "store failed during append\n");
      return 1;
    }
  }
  const double append_summaries_per_sec =
      static_cast<double>(kEpochs * kPerEpoch) / append_s;
  const double append_mb_per_sec =
      static_cast<double>(payload_bytes) / 1e6 / append_s;

  // ---- scan: zero-copy walk of every record in the log.
  double scan_s = 0.0;
  std::uint64_t scanned_bytes = 0, scanned_records = 0;
  {
    store::DeploymentStore store({big.string(), 64}, /*writable=*/false);
    const auto t0 = std::chrono::steady_clock::now();
    store.summaries_log().for_each([&](const store::RecordView& r) {
      scanned_bytes += r.payload.size();
      ++scanned_records;
      return true;
    });
    scan_s = seconds_since(t0);
  }
  const double scan_records_per_sec =
      static_cast<double>(scanned_records) / scan_s;
  const double scan_mb_per_sec =
      static_cast<double>(scanned_bytes) / 1e6 / scan_s;

  // ---- replay: deserialize + aggregate + infer over every stored epoch.
  double replay_s = 0.0;
  std::size_t replayed = 0, replay_alerts = 0;
  {
    inference::InferenceEngine engine(
        bench::evaluation_ruleset(),
        bench::operating_point(1.8, /*feedback=*/false));
    store::StoreReplayer replayer({big.string(), 64});
    const auto t0 = std::chrono::steady_clock::now();
    const auto epochs = replayer.replay(engine, 1.8);
    replay_s = seconds_since(t0);
    replayed = epochs.size();
    for (const auto& e : epochs) replay_alerts += e.alerts.size();
  }
  const double replay_epochs_per_sec =
      static_cast<double>(replayed) / replay_s;

  std::printf("  corpus: %zu live summaries, %zu epochs x %zu/epoch\n",
              corpus.size(), kEpochs, kPerEpoch);
  std::printf("  append: %8.0f summaries/s  %7.1f MB/s  (%.3f s)\n",
              append_summaries_per_sec, append_mb_per_sec, append_s);
  std::printf("  scan:   %8.0f records/s    %7.1f MB/s  (%.3f s)\n",
              scan_records_per_sec, scan_mb_per_sec, scan_s);
  std::printf("  replay: %8.0f epochs/s    %zu alert(s)  (%.3f s)\n",
              replay_epochs_per_sec, replay_alerts, replay_s);

  bench::write_bench_json(
      "store",
      {
          {{"append", 1},
           {"summaries_per_sec", append_summaries_per_sec},
           {"mb_per_sec", append_mb_per_sec}},
          {{"scan", 1},
           {"records_per_sec", scan_records_per_sec},
           {"mb_per_sec", scan_mb_per_sec}},
          {{"replay", 1}, {"epochs_per_sec", replay_epochs_per_sec}},
      },
      {{"epochs", std::to_string(kEpochs)},
       {"summaries_per_epoch", std::to_string(kPerEpoch)}});

  fs::remove_all(base);
  return 0;
}
