// Observability overhead on the per-epoch hot path.
//
// The acceptance bar is that observability is close to free: provenance
// capture happens in the engine's serial decision phase from distances
// Algorithm 1 computes anyway, the drift monitors are three EWMA updates
// per monitor per epoch, and the operational layer added on top — flight
// recorder, SLO tracking, telemetry, and per-epoch kMetrics/kEvents store
// records — is a handful of struct copies plus one small mmap append.
//
// This bench drives the same seeded 4-monitor deployment through
// JaalController::close_epoch under four settings — everything off,
// drift-only, detection observability (provenance + drift), and the full
// operational stack (flight recorder + SLO + telemetry + store_metrics) —
// and reports best-of-N epoch wall time per mode plus the relative
// overhead against observability-off.  The full_ops mode must stay within
// 3% of off (the acceptance bar); the bench exits 1 past that.  A fifth
// mode, tracing_full, adds the per-epoch critical-path profiler (span
// drain + tree rebuild + straggler scan, both duration modes) on top of
// full_ops and must stay within 5%.
// Emits BENCH_observe_overhead.json alongside the table; epochs_per_sec is
// the key bench/check_bench_regression.py tracks.
#include <chrono>
#include <filesystem>
#include <iterator>

#include "attack/generators.hpp"
#include "common.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/background.hpp"
#include "trace/mix.hpp"

namespace {

using namespace jaal;

constexpr std::size_t kMonitors = 4;
constexpr std::size_t kPacketsPerEpoch = 6'000;  // ~1.5k per monitor
constexpr int kReps = 5;
constexpr double kFullOpsOverheadMax = 1.03;
constexpr double kTracingFullOverheadMax = 1.05;

struct Mode {
  const char* name;
  bool provenance;
  bool drift;
  bool ops;      ///< flight recorder + SLO + telemetry + store_metrics
  bool profile;  ///< per-epoch critical-path profiler (needs ops)
};

core::JaalConfig deployment(const Mode& mode, telemetry::Telemetry* tel,
                            const std::string& store_dir) {
  core::JaalConfig cfg;
  cfg.summarizer.batch_size = 1500;
  cfg.summarizer.min_batch = 200;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 150;
  cfg.monitor_count = kMonitors;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.observe.provenance = mode.provenance;
  cfg.observe.drift = mode.drift;
  cfg.observe.profile = mode.profile;
  if (mode.ops) {
    cfg.observe.flight_recorder = true;
    cfg.observe.slo = true;
    cfg.telemetry = tel;
    cfg.store_dir = store_dir;
    cfg.store_metrics = true;
  }
  return cfg;
}

}  // namespace

int main() {
  bench::print_header(
      "Observability overhead: provenance/drift/ops stack vs off, "
      "4-monitor epochs");

  // One fixed traffic window (background plus a SYN flood so alerts — and
  // thus provenance records — are actually raised), ingested identically
  // for every mode.
  trace::TraceProfile profile = trace::trace1_profile();
  trace::BackgroundTraffic background(profile, 17);
  attack::AttackConfig atk;
  atk.victim_ip = core::evaluation_victim_ip();
  atk.packets_per_second = 5000.0;
  atk.seed = 11;
  attack::DistributedSynFlood flood(atk);
  trace::TrafficMix mix(background, {&flood}, 0.10);
  const std::vector<packet::PacketRecord> window =
      trace::take(mix, kPacketsPerEpoch);

  const std::string store_dir = "bench_observe_overhead_store";
  const Mode modes[] = {
      {"off", false, false, false, false},
      {"drift_only", false, true, false, false},
      {"full", true, true, false, false},
      {"full_ops", true, true, true, false},
      {"tracing_full", true, true, true, true},
  };
  constexpr int kModes = static_cast<int>(std::size(modes));
  std::vector<std::vector<std::pair<std::string, double>>> rows;
  double off_ms = 0.0;
  double full_ops_ratio = 0.0;
  double tracing_ratio = 0.0;
  std::size_t base_alerts = 0;

  std::printf("  mode          wall-ms   vs-off   alerts  provenance\n");
  for (int m = 0; m < kModes; ++m) {
    const Mode& mode = modes[m];
    std::filesystem::remove_all(store_dir);
    telemetry::Telemetry tel;
    core::JaalController controller(deployment(mode, &tel, store_dir),
                                    bench::evaluation_ruleset());
    double best_ms = 0.0;
    core::EpochResult epoch;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto& pkt : window) controller.ingest(pkt);
      const auto start = std::chrono::steady_clock::now();
      epoch = controller.close_epoch(static_cast<double>(rep));
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    std::size_t with_provenance = 0;
    for (const auto& alert : epoch.alerts) {
      with_provenance += alert.provenance ? 1 : 0;
    }
    // Observability must never change the detection outcome.
    if (m == 0) {
      off_ms = best_ms;
      base_alerts = epoch.alerts.size();
    } else if (epoch.alerts.size() != base_alerts) {
      std::printf("  FAIL: mode %s changed the alert count (%zu vs %zu)\n",
                  mode.name, epoch.alerts.size(), base_alerts);
      return 1;
    }
    // Provenance records must track the toggle exactly.
    if (with_provenance != (mode.provenance ? epoch.alerts.size() : 0)) {
      std::printf("  FAIL: mode %s attached provenance to %zu of %zu alerts\n",
                  mode.name, with_provenance, epoch.alerts.size());
      return 1;
    }
    // Profiling must actually run in tracing_full (every closed epoch
    // carries a critical path) and stay off everywhere else.
    if (epoch.profile.has_value() != mode.profile) {
      std::printf("  FAIL: mode %s epoch profile %s\n", mode.name,
                  mode.profile ? "missing" : "unexpectedly present");
      return 1;
    }
    const double ratio = off_ms > 0.0 ? best_ms / off_ms : 0.0;
    if (mode.ops && !mode.profile) full_ops_ratio = ratio;
    if (mode.profile) tracing_ratio = ratio;
    std::printf("  %-12s %8.1f  %6.3fx  %6zu  %10zu\n", mode.name, best_ms,
                ratio, epoch.alerts.size(), with_provenance);
    rows.push_back({{"mode", static_cast<double>(m)},
                    {"provenance", mode.provenance ? 1.0 : 0.0},
                    {"drift", mode.drift ? 1.0 : 0.0},
                    {"ops", mode.ops ? 1.0 : 0.0},
                    {"profile", mode.profile ? 1.0 : 0.0},
                    {"wall_ms", best_ms},
                    {"epochs_per_sec", best_ms > 0.0 ? 1000.0 / best_ms : 0.0},
                    {"vs_off", ratio},
                    {"alerts", static_cast<double>(epoch.alerts.size())}});
  }
  std::filesystem::remove_all(store_dir);

  bench::write_bench_json("observe_overhead", rows);

  if (full_ops_ratio > kFullOpsOverheadMax) {
    std::printf(
        "  FAIL: full_ops overhead %.3fx exceeds the %.2fx acceptance bar\n",
        full_ops_ratio, kFullOpsOverheadMax);
    return 1;
  }
  if (tracing_ratio > kTracingFullOverheadMax) {
    std::printf(
        "  FAIL: tracing_full overhead %.3fx exceeds the %.2fx acceptance "
        "bar\n",
        tracing_ratio, kTracingFullOverheadMax);
    return 1;
  }
  std::printf(
      "  full_ops overhead %.3fx within %.2fx; tracing_full %.3fx within "
      "%.2fx\n",
      full_ops_ratio, kFullOpsOverheadMax, tracing_ratio,
      kTracingFullOverheadMax);
  return 0;
}
