// Fig. 11 (+ §8.2 variance-estimation study): compression ratio
// eta = 1 - k/n achievable at a fixed variance-estimation error, vs batch
// size n.
//
// For each batch size, find the smallest k whose summary estimates the
// destination-port variance within epsilon of the raw batch value; print
// eta for epsilon in {5%, 10%}.  Paper shape: error < 5% once k/n > 0.2 and
// n >= 1000; larger batches compress better (eta ~ 85% at n = 2000, 5%).
#include "common.hpp"

#include <cmath>

#include "inference/postprocessor.hpp"
#include "linalg/stats.hpp"

namespace {

using namespace jaal;

/// Relative error of the summary's dst-port variance estimate vs the batch.
double variance_error(const std::vector<packet::PacketRecord>& batch,
                      std::size_t k, std::size_t rank) {
  // True variance over the raw normalized batch.
  std::vector<double> values;
  values.reserve(batch.size());
  for (const auto& pkt : batch) {
    values.push_back(packet::to_normalized_vector(
        pkt)[packet::index(packet::FieldIndex::kTcpDstPort)]);
  }
  const double truth = linalg::variance(values);

  summarize::SummarizerConfig cfg;
  cfg.batch_size = batch.size();
  cfg.min_batch = 1;
  cfg.rank = rank;
  cfg.centroids = k;
  summarize::Summarizer summarizer(cfg);
  auto out = summarizer.summarize(batch);

  inference::Aggregator agg;
  agg.add(out.summary);
  const auto aggregate = agg.take();
  std::vector<std::size_t> all_rows(aggregate.rows());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  const double estimate = inference::matched_variance(
      aggregate, all_rows, packet::FieldIndex::kTcpDstPort);
  return truth > 0.0 ? std::abs(estimate - truth) / truth : 0.0;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 11: compression ratio eta = 1 - k/n vs batch size at fixed\n"
      "variance-estimation error (dst port).  paper: eta ~85% @ n=2000, 5%");

  std::printf("  %-8s %-16s %-16s\n", "n", "eta @ eps=5%", "eta @ eps=10%");
  for (std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    trace::BackgroundTraffic gen(trace::trace1_profile(), 1000 + n);
    const auto batch = trace::take(gen, n);
    double eta5 = 0.0, eta10 = 0.0;
    // Scan k upward (coarse grid) until the error target is met; average
    // over 3 seeds happens implicitly through the deterministic stream.
    for (double ratio :
         {0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40, 0.60}) {
      const std::size_t k =
          std::max<std::size_t>(2, static_cast<std::size_t>(ratio * n));
      const double err = variance_error(batch, k, 12);
      if (eta10 == 0.0 && err <= 0.10) eta10 = 1.0 - ratio;
      if (eta5 == 0.0 && err <= 0.05) {
        eta5 = 1.0 - ratio;
        break;
      }
    }
    std::printf("  %-8zu %-16.1f %-16.1f\n", n, 100.0 * eta5, 100.0 * eta10);
  }

  // The §8.2 companion claim: error < 5% whenever k/n > 0.2 and n >= 1000.
  std::printf("\n  variance-estimation error vs k/n:\n");
  std::printf("  %-8s", "n");
  for (double ratio : {0.05, 0.1, 0.2, 0.3}) std::printf(" k/n=%-6.2f", ratio);
  std::printf("\n");
  for (std::size_t n : {500u, 1000u, 2000u}) {
    trace::BackgroundTraffic gen(trace::trace1_profile(), 2000 + n);
    const auto batch = trace::take(gen, n);
    std::printf("  %-8zu", n);
    for (double ratio : {0.05, 0.1, 0.2, 0.3}) {
      const std::size_t k =
          std::max<std::size_t>(2, static_cast<std::size_t>(ratio * n));
      std::printf(" %-10.1f", 100.0 * variance_error(batch, k, 12));
    }
    std::printf("  (error %%)\n");
  }
  return 0;
}
