// §10 extension: payload-based detection via term-frequency summaries.
//
// Sweeps the fraction of payloads carrying the ".exe" marker and reports
// the summary-based estimate vs ground truth, plus detection TPR/FPR for a
// keyword rule — the paper's sketch of how Jaal generalizes beyond headers.
#include "common.hpp"

#include "payload/term_matrix.hpp"

int main() {
  using namespace jaal;
  using namespace jaal::payload;
  bench::print_header(
      "Extension (paper §10): payload term-frequency summaries");

  const Vocabulary vocab = default_vocabulary();
  std::printf("  vocabulary: %zu tracked terms\n", vocab.size());

  std::printf("\n  %-12s %-14s %-16s %-14s\n", "inject rate",
              "true packets", "estimated", "error %");
  for (double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    PayloadGenerator gen(11, rate);
    const auto payloads = gen.batch(1000);
    std::size_t truth = 0;
    for (const auto& p : payloads) {
      if (p.find(".exe") != std::string::npos) ++truth;
    }
    const auto summary = summarize_payloads(vocab, payloads, {});
    const auto alerts = match_keywords(
        vocab, summary, {{".exe", 1, "executable download"}});
    const double estimate =
        alerts.empty() ? 0.0 : alerts[0].estimated_packets;
    const double err =
        truth > 0 ? 100.0 * std::abs(estimate - static_cast<double>(truth)) /
                        static_cast<double>(truth)
                  : estimate;
    std::printf("  %-12.2f %-14zu %-16.1f %-14.1f\n", rate, truth, estimate,
                err);
  }

  // Detection quality at a fixed rule threshold over repeated batches.
  std::printf("\n  keyword rule \".exe\" >= 15 packets/batch (n=1000):\n");
  const std::vector<KeywordRule> rules = {{".exe", 15, "exe burst"}};
  for (double rate : {0.0, 0.03, 0.10}) {
    std::size_t fired = 0;
    constexpr int kBatches = 20;
    for (int b = 0; b < kBatches; ++b) {
      PayloadGenerator gen(100 + b, rate);
      const auto summary =
          summarize_payloads(vocab, gen.batch(1000), {});
      fired += match_keywords(vocab, summary, rules).empty() ? 0 : 1;
    }
    std::printf("  inject %.2f -> fired in %zu/%d batches\n", rate, fired,
                kBatches);
  }
  std::printf("\n  summary cost: k=32 centroids x %zu terms vs 1000 payloads\n",
              vocab.size());
  return 0;
}
