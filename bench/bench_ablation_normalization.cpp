// Ablation: the §4.1 normalization (x / max(x)).
//
// Without normalization, Euclidean/L1 distances are dominated by the
// 32-bit fields (addresses, seq/ack); ports and flags contribute nothing.
// This bench quantifies the per-field share of the average inter-packet
// distance with and without normalization — the paper's motivating example
// (SYN flag vs source address) made concrete.
#include "common.hpp"

#include "summarize/normalize.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Ablation: field normalization (share of inter-packet L1 distance)");

  trace::BackgroundTraffic gen(trace::trace1_profile(), 55);
  const auto batch = trace::take(gen, 1000);
  const linalg::Matrix raw = summarize::to_matrix(batch);
  linalg::Matrix norm = raw;
  summarize::normalize_in_place(norm);

  // Average |x_i - x_j| per field over random packet pairs.
  std::mt19937_64 rng(1);
  std::array<double, packet::kFieldCount> raw_share{}, norm_share{};
  constexpr int kPairs = 20000;
  for (int pair = 0; pair < kPairs; ++pair) {
    const std::size_t i = rng() % raw.rows();
    const std::size_t j = rng() % raw.rows();
    for (std::size_t f = 0; f < packet::kFieldCount; ++f) {
      raw_share[f] += std::abs(raw(i, f) - raw(j, f));
      norm_share[f] += std::abs(norm(i, f) - norm(j, f));
    }
  }
  double raw_total = 0.0, norm_total = 0.0;
  for (std::size_t f = 0; f < packet::kFieldCount; ++f) {
    raw_total += raw_share[f];
    norm_total += norm_share[f];
  }

  std::printf("  %-18s %-16s %-16s\n", "field", "raw share %", "norm share %");
  for (packet::FieldIndex f : packet::all_fields()) {
    const std::size_t idx = packet::index(f);
    std::printf("  %-18s %-16.4f %-16.4f\n",
                std::string(packet::field_name(f)).c_str(),
                100.0 * raw_share[idx] / raw_total,
                100.0 * norm_share[idx] / norm_total);
  }

  // Headline: how much of the unnormalized distance the four 32-bit fields
  // swallow (paper's argument for why normalization is mandatory).
  const double wide =
      raw_share[packet::index(packet::FieldIndex::kIpSrcAddr)] +
      raw_share[packet::index(packet::FieldIndex::kIpDstAddr)] +
      raw_share[packet::index(packet::FieldIndex::kTcpSeq)] +
      raw_share[packet::index(packet::FieldIndex::kTcpAck)];
  const double wide_norm =
      norm_share[packet::index(packet::FieldIndex::kIpSrcAddr)] +
      norm_share[packet::index(packet::FieldIndex::kIpDstAddr)] +
      norm_share[packet::index(packet::FieldIndex::kTcpSeq)] +
      norm_share[packet::index(packet::FieldIndex::kTcpAck)];
  std::printf(
      "\n  32-bit fields' share of total distance: raw %.2f%%, "
      "normalized %.2f%%\n",
      100.0 * wide / raw_total, 100.0 * wide_norm / norm_total);
  std::printf("  (flags/ports are invisible without normalization; no SYN\n"
              "  signature could ever match a centroid.)\n");
  return 0;
}
