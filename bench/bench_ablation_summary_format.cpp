// Ablation: combined (S1) vs split (S2) summary formats.
//
// §4.3 sends S2 iff r(k+p+1)+k < k(p+1).  This bench maps the crossover
// over the (r, k) grid, verifies the auto-selection picks the smaller
// format, and measures the reconstruction fidelity of both (they carry
// equivalent information, so aggregate centroids should coincide).
#include "common.hpp"

#include "inference/aggregate.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Ablation: S1 (combined) vs S2 (split) summary format (p = 18)");

  std::printf("  elements transmitted; * marks the auto-selected format\n");
  std::printf("  %-6s", "k\\r");
  for (std::size_t r : {4u, 8u, 12u, 15u, 17u}) std::printf(" r=%-11zu", r);
  std::printf("  S1=k(p+1)\n");
  const std::size_t p = packet::kFieldCount;
  for (std::size_t k : {50u, 100u, 200u, 500u}) {
    std::printf("  %-6zu", k);
    const std::size_t s1 = k * (p + 1);
    for (std::size_t r : {4u, 8u, 12u, 15u, 17u}) {
      const std::size_t s2 = r * (k + p + 1) + k;
      std::printf(" %6zu%-7s", s2, s2 < s1 ? " (S2*)" : " (S1*)");
    }
    std::printf("  %zu\n", s1);
  }

  // Fidelity: summarize one batch both ways, reconstruct S2, and compare
  // the per-packet quantization error of the two centroid sets.
  trace::BackgroundTraffic gen(trace::trace1_profile(), 21);
  const auto batch = trace::take(gen, 1000);

  std::printf("\n  mean per-packet quantization error (normalized L1):\n");
  for (auto format :
       {summarize::SummaryFormat::kCombined, summarize::SummaryFormat::kSplit}) {
    summarize::SummarizerConfig cfg;
    cfg.batch_size = 1000;
    cfg.min_batch = 1;
    cfg.rank = 12;
    cfg.centroids = 200;
    cfg.format = format;
    summarize::Summarizer summarizer(cfg);
    const auto out = summarizer.summarize(batch);

    inference::Aggregator agg;
    agg.add(out.summary);
    const auto aggregate = agg.take();
    double total = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto v = packet::to_normalized_vector(batch[i]);
      const auto c = aggregate.centroids.row(out.assignment[i]);
      double err = 0.0;
      for (std::size_t j = 0; j < packet::kFieldCount; ++j) {
        err += std::abs(v[j] - c[j]);
      }
      total += err / packet::kFieldCount;
    }
    std::printf("  %-10s %.5f  (%zu elements, %zu wire bytes)\n",
                format == summarize::SummaryFormat::kCombined ? "combined"
                                                              : "split",
                total / batch.size(), summarize::element_count(out.summary),
                summarize::wire_bytes(out.summary));
  }
  return 0;
}
