// §10 extension: multi-window alert correlation to reduce FPR.
//
// Runs a JaalController over a long benign stream and over a stream with a
// sustained DDoS, at a deliberately loose operating point (high per-epoch
// FPR), and shows how requiring m-of-w window confirmation trades alert
// latency for false-positive suppression.
#include "common.hpp"

#include "attack/generators.hpp"
#include "core/controller.hpp"
#include "inference/correlator.hpp"
#include "trace/mix.hpp"

namespace {

using namespace jaal;

struct RunStats {
  std::size_t epochs = 0;
  std::size_t alerting_epochs = 0;        ///< Raw engine output.
  std::size_t confirmed_epochs = 0;       ///< After correlation.
  double first_confirmed = -1.0;          ///< Time of first confirmed alert.
};

RunStats run(bool with_attack, const inference::CorrelatorConfig& ccfg,
             std::uint64_t seed) {
  core::JaalConfig cfg;
  cfg.monitor_count = 3;
  cfg.epoch_seconds = 0.04;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 200;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  // Deliberately aggressive: loose distance threshold, little headroom.
  // Sockstress keeps its per-attack threshold (benign small-window ACK
  // centroids sit at distance ~0.021 from its question; tau_d beyond that
  // is outside the rule's usable range — the reason §8.1 uses attack
  // specific thresholds).
  cfg.engine.default_thresholds = {0.03, 0.03};
  cfg.engine.per_rule[1000005] = {0.015, 0.015};
  cfg.engine.tau_c_scale = 0.95;
  core::JaalController jaal(cfg, bench::evaluation_ruleset());

  // Composition drifts every epoch, so benign threshold crossings are
  // short-lived; the attack is sustained.
  trace::TraceProfile profile = trace::trace1_profile();
  profile.drift_interval_packets = 2000;
  trace::BackgroundTraffic background(profile, seed);
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.packets_per_second = 20000.0;
  acfg.start_time = 0.2;
  acfg.seed = seed + 1;
  attack::DistributedSynFlood flood(acfg);
  std::vector<trace::PacketSource*> attacks;
  if (with_attack) attacks.push_back(&flood);
  trace::TrafficMix mix(background, attacks, 0.10);

  inference::AlertCorrelator correlator(ccfg);
  RunStats stats;
  for (const auto& epoch : jaal.run(mix, 0.6)) {
    ++stats.epochs;
    stats.alerting_epochs += epoch.alerts.empty() ? 0 : 1;
    const auto confirmed = correlator.observe(epoch.alerts);
    if (!confirmed.empty()) {
      ++stats.confirmed_epochs;
      if (stats.first_confirmed < 0.0) stats.first_confirmed = epoch.end_time;
    }
  }
  return stats;
}

}  // namespace

int main() {
  using namespace jaal;
  bench::print_header(
      "Extension (paper §10): multi-window alert correlation");
  std::printf("  loose operating point on ~15 epochs; attack starts at t=0.2s\n\n");
  std::printf("  %-10s %-10s %-22s %-22s %-14s\n", "require", "window",
              "benign epochs w/alert", "attack epochs w/alert",
              "detect delay");
  for (const auto& [required, window] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {2, 3}, {3, 4}, {4, 4}}) {
    const inference::CorrelatorConfig ccfg{window, required};
    const RunStats benign = run(false, ccfg, 5);
    const RunStats attacked = run(true, ccfg, 5);
    char delay[32];
    if (attacked.first_confirmed >= 0.0) {
      std::snprintf(delay, sizeof(delay), "%.2fs", attacked.first_confirmed);
    } else {
      std::snprintf(delay, sizeof(delay), "missed");
    }
    std::printf("  %-10zu %-10zu %zu/%zu%-16s %zu/%zu%-16s %-14s\n", required,
                window, benign.confirmed_epochs, benign.epochs, "",
                attacked.confirmed_epochs, attacked.epochs, "", delay);
  }
  std::printf(
      "\n  requiring repeated window confirmation suppresses sporadic benign\n"
      "  threshold crossings while a sustained attack confirms within one\n"
      "  extra epoch.\n");
  return 0;
}
