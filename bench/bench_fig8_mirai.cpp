// Fig. 8 / Mirai case study: unchecked infections vs infections with Jaal's
// detect-and-shut-off response.
//
// Two parts:
//  1. Measure Jaal's detection performance on the Mirai scan itself
//     (the high-variance destination-IP rule on ports 23/2323): the paper
//     reports 95% accuracy within 3 s.
//  2. Run the epidemic with and without the measured response and print the
//     Fig. 8 trajectories (150 vulnerable devices; unchecked growth is
//     near-exponential; with Jaal, infections stay bounded, paper: < 50).
#include "common.hpp"

#include "attack/mirai.hpp"
#include "netsim/latency.hpp"

int main() {
  using namespace jaal;
  bench::print_header("Fig. 8: Mirai outbreak, unchecked vs Jaal response");

  // Part 1: detection accuracy and latency for the scan.
  constexpr std::size_t kTrials = 20;
  core::TrialConfig cfg = bench::trial_config(1000, 12, 200);
  cfg.attack_intensity_min = 1.0;
  cfg.attack_intensity_max = 1.0;
  const auto engine_cfg =
      bench::operating_point(core::tau_c_scale_for(cfg), false);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < kTrials; ++i) {
    const core::Trial trial =
        core::make_trial(packet::AttackType::kMiraiScan, cfg, 500 + i * 13);
    hits += core::detect(trial, packet::AttackType::kMiraiScan,
                         bench::evaluation_ruleset(), engine_cfg)
                ? 1
                : 0;
  }
  const double accuracy =
      static_cast<double>(hits) / static_cast<double>(kTrials);
  // Detection latency budget: one 2 s epoch of evidence accumulation, plus
  // summary collection over the actual topology, plus inference compute.
  const netsim::Topology topo =
      netsim::make_isp_topology(netsim::abovenet_profile(), 1);
  const auto sites = topo.default_monitor_sites(25);
  const auto collection = netsim::collection_latency(
      topo, sites, sites.front(), /*summary bytes, r=12 k=200*/ 11312);
  const double latency =
      netsim::detection_latency_estimate(2.0, collection, /*inference=*/0.05);
  std::printf(
      "  scan detection accuracy: %.0f%% (paper: 95%%)\n"
      "  detection latency: 2 s epoch + %.0f ms summary collection (worst\n"
      "  monitor) + inference = %.2f s (paper: within 3 s)\n",
      accuracy * 100.0, 1000.0 * collection.worst, latency);

  // Part 2: the epidemic.
  attack::MiraiConfig mirai;
  mirai.vulnerable_count = 150;
  mirai.duration = 120.0;

  attack::ResponsePolicy off;
  attack::ResponsePolicy on;
  on.enabled = true;
  on.detection_latency = latency;
  on.detection_probability = accuracy;

  const auto unchecked = attack::simulate_outbreak(mirai, off);
  const auto defended = attack::simulate_outbreak(mirai, on);

  std::printf("\n  %-8s %-22s %-22s\n", "time(s)", "infected (unchecked)",
              "infected (Jaal)");
  for (std::size_t i = 0; i < unchecked.size(); i += 16) {  // every 4 s
    std::printf("  %-8.0f %-22zu %-22zu\n", unchecked[i].time,
                unchecked[i].total_infected, defended[i].total_infected);
  }
  std::printf("\n  final: unchecked %zu / %zu vulnerable, with Jaal %zu"
              " (shut off %zu)\n",
              unchecked.back().total_infected, mirai.vulnerable_count,
              defended.back().total_infected, defended.back().shut_off);
  return 0;
}
