// Ablation: k-means++ seeding vs naive random seeding (§4.3 design choice).
//
// The paper chose k-means++ for its O(log k)-competitiveness and fast
// convergence.  This bench measures final inertia and iterations-to-
// converge for both initializations over real packet batches.
#include "common.hpp"

#include "summarize/kmeans.hpp"
#include "summarize/normalize.hpp"

int main() {
  using namespace jaal;
  bench::print_header("Ablation: k-means++ vs random initialization");

  trace::BackgroundTraffic gen(trace::trace1_profile(), 33);
  const auto batch = trace::take(gen, 1000);
  const linalg::Matrix x = summarize::to_normalized_matrix(batch);

  std::printf("  %-6s %-12s %-22s %-22s\n", "k", "seeds",
              "k-means++ inertia/iters", "random inertia/iters");
  for (std::size_t k : {50u, 100u, 200u}) {
    double pp_inertia = 0.0, rnd_inertia = 0.0;
    double pp_iters = 0.0, rnd_iters = 0.0;
    constexpr int kSeeds = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
      summarize::KMeansOptions opts;
      opts.init = summarize::KMeansInit::kPlusPlus;
      std::mt19937_64 rng_pp(seed);
      const auto pp = summarize::kmeans(x, k, rng_pp, opts);
      pp_inertia += pp.inertia;
      pp_iters += static_cast<double>(pp.iterations);

      opts.init = summarize::KMeansInit::kRandom;
      std::mt19937_64 rng_rand(seed);
      const auto rnd = summarize::kmeans(x, k, rng_rand, opts);
      rnd_inertia += rnd.inertia;
      rnd_iters += static_cast<double>(rnd.iterations);
    }
    std::printf("  %-6zu %-12d %10.4f / %-9.1f %10.4f / %-9.1f\n", k, kSeeds,
                pp_inertia / kSeeds, pp_iters / kSeeds, rnd_inertia / kSeeds,
                rnd_iters / kSeeds);
  }
  std::printf("\n  lower inertia = tighter clusters = purer centroids for\n"
              "  the similarity estimator.\n");
  return 0;
}
