// §8 "Computation Costs": micro-benchmarks of the per-monitor pipeline.
//
// The paper reports each monitor comfortably sustaining 300 Mbps — i.e.
// SVD + k-means is not the bottleneck.  These google-benchmark timings
// report packets/second for each stage and the full summarize path.
#include <benchmark/benchmark.h>

#include <random>

#include "linalg/simd.hpp"
#include "linalg/svd.hpp"
#include "packet/wire.hpp"
#include "rules/raw_matcher.hpp"
#include "summarize/summarizer.hpp"
#include "trace/background.hpp"

namespace {

using namespace jaal;

std::vector<packet::PacketRecord> batch(std::size_t n) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 7);
  return trace::take(gen, n);
}

void BM_Normalize(benchmark::State& state) {
  const auto packets = batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarize::to_normalized_matrix(packets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Normalize)->Arg(1000)->Arg(2000);

void BM_TruncatedSvd(benchmark::State& state) {
  const auto packets = batch(static_cast<std::size_t>(state.range(0)));
  const linalg::Matrix x = summarize::to_normalized_matrix(packets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::truncated_svd(x, 12));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TruncatedSvd)->Arg(1000)->Arg(2000);

void BM_KMeans(benchmark::State& state) {
  const auto packets = batch(1000);
  const linalg::Matrix x = summarize::to_normalized_matrix(packets);
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        summarize::kmeans(x, static_cast<std::size_t>(state.range(0)), rng));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_KMeans)->Arg(100)->Arg(200)->Arg(500);

void BM_FullSummarize(benchmark::State& state) {
  const auto packets = batch(static_cast<std::size_t>(state.range(0)));
  summarize::SummarizerConfig cfg;
  cfg.batch_size = packets.size();
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = packets.size() / 5;  // k/n = 0.2
  summarize::Summarizer summarizer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarizer.summarize(packets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // Headline number: packets/s * 40 header bytes * 8 -> sustained bps on
  // the headers-only stream the monitor actually processes.
}
BENCHMARK(BM_FullSummarize)->Arg(1000)->Arg(2000);

void BM_FullSummarizeRandomizedSvd(benchmark::State& state) {
  const auto packets = batch(static_cast<std::size_t>(state.range(0)));
  summarize::SummarizerConfig cfg;
  cfg.batch_size = packets.size();
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = packets.size() / 5;
  cfg.svd_backend = summarize::SvdBackend::kRandomized;
  summarize::Summarizer summarizer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarizer.summarize(packets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullSummarizeRandomizedSvd)->Arg(1000)->Arg(2000);

/// The SIMD acceptance pair: the same full pipeline with the kernels pinned
/// to scalar vs the best level this host supports.  The items/s ratio of the
/// two is the single-thread speedup the CI regression gate tracks.
void BM_FullSummarizeForcedLevel(benchmark::State& state,
                                 linalg::simd::Level level) {
  const auto packets = batch(static_cast<std::size_t>(state.range(0)));
  summarize::SummarizerConfig cfg;
  cfg.batch_size = packets.size();
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = packets.size() / 5;
  summarize::Summarizer summarizer(cfg);
  const linalg::simd::Level prev = linalg::simd::active();
  linalg::simd::force_level(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarizer.summarize(packets));
  }
  linalg::simd::force_level(prev);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
void BM_FullSummarizeScalar(benchmark::State& state) {
  BM_FullSummarizeForcedLevel(state, linalg::simd::Level::kScalar);
}
void BM_FullSummarizeSimd(benchmark::State& state) {
  BM_FullSummarizeForcedLevel(state, linalg::simd::detected());
}
BENCHMARK(BM_FullSummarizeScalar)->Arg(1000)->Arg(2000);
BENCHMARK(BM_FullSummarizeSimd)->Arg(1000)->Arg(2000);

void BM_FullSummarizeIncrementalSvd(benchmark::State& state) {
  const auto packets = batch(static_cast<std::size_t>(state.range(0)));
  summarize::SummarizerConfig cfg;
  cfg.batch_size = packets.size();
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = packets.size() / 5;
  cfg.svd_backend = summarize::SvdBackend::kIncremental;
  summarize::Summarizer summarizer(cfg);
  // First update is the cold eigensolve; steady state is what matters.
  (void)summarizer.summarize(packets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarizer.summarize(packets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullSummarizeIncrementalSvd)->Arg(1000)->Arg(2000);

void BM_FullSummarizeMiniBatch(benchmark::State& state) {
  const auto packets = batch(static_cast<std::size_t>(state.range(0)));
  summarize::SummarizerConfig cfg;
  cfg.batch_size = packets.size();
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = packets.size() / 5;
  cfg.svd_backend = summarize::SvdBackend::kIncremental;
  cfg.cluster_backend = summarize::ClusterBackend::kMiniBatch;
  summarize::Summarizer summarizer(cfg);
  (void)summarizer.summarize(packets);  // seed centroids / basis
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarizer.summarize(packets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullSummarizeMiniBatch)->Arg(1000)->Arg(2000);

void BM_SerializeSummary(benchmark::State& state) {
  const auto packets = batch(1000);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = 1000;
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = 200;
  summarize::Summarizer summarizer(cfg);
  const auto out = summarizer.summarize(packets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(summarize::serialize(out.summary));
  }
}
BENCHMARK(BM_SerializeSummary);

void BM_WireParse(benchmark::State& state) {
  const auto packets = batch(1);
  const auto bytes = packet::serialize_headers(packets[0].ip, packets[0].tcp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet::parse_headers(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireParse);

void BM_RawMatcher(benchmark::State& state) {
  const auto rules = rules::parse_rules(rules::default_ruleset_text(), [] {
    rules::RuleVars vars;
    vars.home_net = rules::AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
    return vars;
  }());
  const rules::RawMatcher matcher(rules);
  const auto packets = batch(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.analyze(packets, 2.0));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RawMatcher);

}  // namespace

BENCHMARK_MAIN();
