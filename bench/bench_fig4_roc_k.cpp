// Fig. 4: ROC curves per attack while varying the number of centroids
// k in {100, 200, 500}; batch n = 1000, rank r = 12, Trace 1, topology 1.
//
// Paper shape: k = 200 (k/n = 20%) already yields high accuracy for every
// attack; k = 500 adds little; k = 100 costs significant accuracy for all
// attacks except plain SYN floods (boolean flags keep SYN centroids
// separable even at coarse resolution).
#include "common.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Fig. 4: ROC vs number of centroids k (n=1000, r=12, Trace 1)");

  constexpr std::size_t kPositives = 24;
  constexpr std::size_t kNegatives = 24;
  const auto taus = bench::roc_taus();

  for (std::size_t k : {100u, 200u, 500u}) {
    std::printf("\n--- k = %zu (k/n = %.0f%%) ---\n", k,
                100.0 * static_cast<double>(k) / 1000.0);
    const core::TrialConfig cfg = bench::trial_config(1000, 12, k);
    const auto trials = core::make_trial_set(core::evaluation_attacks(),
                                             kPositives, kNegatives, cfg);
    const double scale = core::tau_c_scale_for(cfg);
    for (packet::AttackType attack : core::evaluation_attacks()) {
      const core::RocCurve curve = core::roc_sweep(
          trials, attack, bench::evaluation_ruleset(), taus,
          core::default_tau_c_scales(), scale);
      bench::print_roc(curve);
    }
  }
  return 0;
}
