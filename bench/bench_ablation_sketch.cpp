// §2's sketching argument, made concrete.
//
// A count-min sketch answers point queries about ONE key dimension.  To
// answer Jaal's rule set — arbitrary conjunctions over 18 header fields —
// a sketch-based monitor needs one sketch per field combination: 2^18
// sketches per epoch.  This bench measures (a) sketch accuracy on the task
// it is built for, (b) its inability to answer a cross-field question, and
// (c) the byte cost of combinatorial coverage vs one Jaal summary.
#include "common.hpp"

#include <unordered_map>

#include "attack/generators.hpp"
#include "baseline/countmin.hpp"
#include "trace/mix.hpp"

int main() {
  using namespace jaal;
  bench::print_header(
      "Ablation: count-min sketches vs summaries (the §2 generality argument)");

  // Traffic: background plus a distributed SYN flood.
  trace::BackgroundTraffic background(trace::trace1_profile(), 9);
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.packets_per_second = 20000.0;
  acfg.seed = 10;
  attack::DistributedSynFlood flood(acfg);
  trace::TrafficMix mix(background, {&flood}, 0.10);
  const auto window = trace::take(mix, 4000);

  // (a) Single-dimension task: count packets per destination IP.
  baseline::CountMinSketch dst_sketch(2048, 4);
  std::unordered_map<std::uint32_t, std::uint64_t> truth;
  for (const auto& pkt : window) {
    dst_sketch.add(std::uint64_t{pkt.ip.dst_ip});
    ++truth[pkt.ip.dst_ip];
  }
  const std::uint64_t victim_true = truth[core::evaluation_victim_ip()];
  const std::uint64_t victim_est =
      dst_sketch.estimate(std::uint64_t{core::evaluation_victim_ip()});
  std::printf("  dst-IP point query (its design task): victim true=%llu "
              "estimate=%llu\n",
              static_cast<unsigned long long>(victim_true),
              static_cast<unsigned long long>(victim_est));

  // (b) Cross-field question: "SYN packets to the victim" — the dst-IP
  // sketch cannot answer it; the best it can do is the dst count, which
  // overstates the SYN-flood evidence by the benign share.
  std::uint64_t syn_to_victim = 0;
  for (const auto& pkt : window) {
    if (pkt.ip.dst_ip == core::evaluation_victim_ip() &&
        pkt.tcp.flags == 0x02) {
      ++syn_to_victim;
    }
  }
  std::printf("  cross-field query (SYN && dst=victim): true=%llu, dst-IP "
              "sketch can only answer %llu (no flag dimension)\n",
              static_cast<unsigned long long>(syn_to_victim),
              static_cast<unsigned long long>(victim_est));

  // A dedicated (dst, flags) sketch answers it — but then loses the
  // dst-only query, and so on for every combination.
  baseline::CountMinSketch pair_sketch(2048, 4);
  for (const auto& pkt : window) {
    pair_sketch.add((std::uint64_t{pkt.ip.dst_ip} << 8) | pkt.tcp.flags);
  }
  const std::uint64_t pair_est = pair_sketch.estimate(
      (std::uint64_t{core::evaluation_victim_ip()} << 8) | 0x02);
  std::printf("  dedicated (dst,flags) sketch answers it: estimate=%llu\n",
              static_cast<unsigned long long>(pair_est));

  // (c) The combinatorial cost (paper: 2^18 sketches x 500 KB = 128 GB).
  const double per_sketch = 500.0 * 1024.0;
  const double all_combos = per_sketch * static_cast<double>(1 << 18);
  std::printf(
      "\n  covering all field combinations: 2^18 sketches x 500 KiB = %.0f GiB"
      "\n  per monitor per epoch (paper: ~128 GB); one Jaal summary of the\n"
      "  same window: %zu bytes and answers every rule.\n",
      all_combos / (1024.0 * 1024.0 * 1024.0),
      static_cast<std::size_t>((12u * (200u + 18u + 1u) + 200u) * 4u));
  return 0;
}
