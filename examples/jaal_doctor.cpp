// jaal_doctor — the detection-observability walkthrough: replay a seeded
// Trace-1 deployment, let the traffic shift mid-run, and print a ranked
// diagnosis of what the pipeline thinks of its own detection quality.
//
//   provenance   every alert carries its full causal chain (matched
//                centroids, margins vs tau_d1/tau_d2, threshold case,
//                feedback outcome); dumped as JSONL
//   drift        per-monitor summary-fidelity baselines (SVD energy,
//                k-means inertia, reconstruction error) flag the mid-run
//                traffic shift; the caution signal rises with it
//   scoreboard   a small labeled trial set grounds per-rule precision
//   self-check   the report must be byte-identical across two runs and
//                across threads=1 vs 2, and every alert's margins must
//                reproduce its threshold decision — exit 1 otherwise
//
//   $ ./jaal_doctor           # human-readable ranked diagnosis
//   $ ./jaal_doctor --json    # health JSONL on stdout (the CI artifact)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "jaal.hpp"

namespace {

using namespace jaal;

summarize::SummarizerConfig doctor_summarizer() {
  summarize::SummarizerConfig scfg;
  scfg.batch_size = 1000;
  scfg.min_batch = 400;
  scfg.rank = 12;
  scfg.centroids = 200;  // k/n = 0.2, the paper's sweet spot
  return scfg;
}

/// Checks that an alert's provenance margins reproduce its threshold
/// decision (the acceptance bar for the causal chain: it must be evidence,
/// not decoration).  Returns an error description, empty when consistent.
std::string check_provenance(const inference::Alert& alert) {
  if (!alert.provenance) return "alert has no provenance attached";
  const observe::AlertProvenance& p = *alert.provenance;
  if (p.centroids.empty()) return "provenance has an empty evidence set";
  if (p.monitors.empty()) return "provenance names no contributing monitors";
  const bool strict = p.threshold_case == observe::ThresholdCase::kStrictMatch;
  for (const observe::CentroidEvidence& c : p.centroids) {
    // Margins must be the recorded thresholds minus the recorded distance.
    if (std::abs((p.tau_d1 - c.distance) - c.margin_d1) > 1e-12 ||
        std::abs((p.tau_d2 - c.distance) - c.margin_d2) > 1e-12) {
      return "centroid margins disagree with distance and thresholds";
    }
    // Every evidence centroid sits inside the threshold that admitted it.
    if (strict ? c.margin_d1 < 0.0 : c.margin_d2 < 0.0) {
      return "evidence centroid outside its admitting threshold";
    }
  }
  if (strict && p.strict_count < p.tau_c) {
    return "case-1 alert with strict count below tau_c";
  }
  if (!strict && (p.loose_count < p.tau_c || p.strict_count >= p.tau_c)) {
    return "case-3 alert whose counts do not straddle tau_c";
  }
  return {};
}

struct DoctorRun {
  std::string provenance_jsonl;
  std::string health_jsonl;  ///< Deployment report (scoreboard empty).
  observe::HealthReport report;
  std::size_t alerts = 0;
  std::size_t drift_events = 0;
  double final_caution = 0.0;
  std::string error;  ///< First provenance inconsistency, empty when clean.
};

/// One seeded deployment: six Trace-1 epochs carrying a distributed SYN
/// flood, then six epochs after the backbone mix shifts (Trace-2 port mix,
/// triple the rate, heavier flow tail) — the shift is what the drift
/// monitors are there to catch.  Mild transport loss keeps the degraded-mode
/// accounting non-trivial.
DoctorRun run_deployment(std::size_t threads) {
  core::JaalConfig cfg;
  cfg.summarizer = doctor_summarizer();
  cfg.monitor_count = 2;
  cfg.epoch_seconds = 1.0;
  cfg.threads = threads;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.faults.seed = 42;
  cfg.faults.drop_rate = 0.05;
  // Six healthy epochs before the shift: let the EWMA baselines settle over
  // most of them so stationary jitter is not judged drift-worthy.
  cfg.observe.drift_config.warmup = 5;
  core::JaalController doctor(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              core::evaluation_rule_vars()));

  DoctorRun out;
  std::vector<std::shared_ptr<const observe::AlertProvenance>> records;
  auto consume = [&](const std::vector<core::EpochResult>& epochs) {
    for (const core::EpochResult& epoch : epochs) {
      out.drift_events += epoch.drift_events.size();
      out.final_caution = epoch.caution;
      for (const inference::Alert& alert : epoch.alerts) {
        ++out.alerts;
        if (out.error.empty()) out.error = check_provenance(alert);
        if (alert.provenance) records.push_back(alert.provenance);
      }
    }
  };

  {  // Phase 1: healthy Trace-1 baseline plus the flood from t=1 s.
    trace::TraceProfile profile = trace::trace1_profile();
    profile.packets_per_second = 2000.0;  // ~2000-pkt epochs: tau_c_scale = 1
    trace::BackgroundTraffic background(profile, 7);
    attack::AttackConfig atk;
    atk.victim_ip = core::evaluation_victim_ip();
    atk.packets_per_second = 5000.0;  // throttled to the 10% injection cap
    atk.start_time = 1.0;
    atk.seed = 11;
    attack::DistributedSynFlood flood(atk);
    trace::TrafficMix mix(background, {&flood}, 0.10);
    consume(doctor.run(mix, 6.0));
  }
  {  // Phase 2: the backbone shifts under the deployment.
    trace::TraceProfile shifted = trace::trace2_profile();
    shifted.packets_per_second = 6000.0;
    shifted.pareto_alpha = 1.05;  // much heavier elephants
    trace::BackgroundTraffic background(shifted, 21);
    consume(doctor.run(background, 6.0));
  }

  out.report = doctor.health_report();
  out.health_jsonl = out.report.to_jsonl();
  out.provenance_jsonl = observe::to_jsonl(records);
  return out;
}

/// Grounds the per-rule scoreboard in labeled trials: a few positives per
/// attack plus benign negatives, each decided by a fresh engine.
std::vector<observe::RuleScore> build_scoreboard(
    const std::vector<rules::Rule>& ruleset) {
  core::TrialConfig tcfg;
  tcfg.summarizer = doctor_summarizer();
  tcfg.monitor_count = 2;  // 2000-packet window: tau_c_scale = 1
  tcfg.profile = trace::trace1_profile();
  tcfg.attack_intensity_min = 1.0;
  tcfg.attack_intensity_max = 1.0;
  tcfg.seed = 5;
  const std::vector<packet::AttackType> attacks = {
      packet::AttackType::kDistributedSynFlood, packet::AttackType::kPortScan};
  const std::vector<core::Trial> trials =
      core::make_trial_set(attacks, 2, 2, tcfg);

  inference::EngineConfig ecfg;
  ecfg.default_thresholds = {0.008, 0.03};
  ecfg.feedback_enabled = true;
  ecfg.tau_c_scale = core::tau_c_scale_for(tcfg);
  ecfg.record_provenance = false;  // labels, not causal chains, matter here

  std::map<std::uint32_t, observe::RuleScore> scores;
  for (const rules::Rule& rule : ruleset) {
    observe::RuleScore& s = scores[rule.sid];
    s.sid = rule.sid;
    s.msg = rule.msg;
  }
  for (const core::Trial& trial : trials) {
    std::set<std::uint32_t> labeled;
    if (trial.injected != packet::AttackType::kNone) {
      for (std::uint32_t sid : core::sids_for(trial.injected)) {
        labeled.insert(sid);
        ++scores[sid].labeled_trials;
      }
    }
    inference::InferenceEngine engine(ruleset, ecfg);
    std::set<std::uint32_t> fired;
    for (const inference::Alert& alert :
         engine.infer(trial.aggregate, trial.fetcher())) {
      fired.insert(alert.sid);
    }
    for (std::uint32_t sid : fired) {
      if (labeled.count(sid) > 0) {
        ++scores[sid].true_positives;
      } else {
        ++scores[sid].false_positives;
      }
    }
  }
  std::vector<observe::RuleScore> board;
  board.reserve(scores.size());
  for (auto& [sid, score] : scores) board.push_back(std::move(score));
  return board;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  if (!json) {
    std::printf("jaal_doctor: replaying a seeded Trace-1 deployment "
                "(12 x 1 s epochs, traffic shift at t=6 s)\n");
  }
  const DoctorRun base = run_deployment(1);
  const DoctorRun rerun = run_deployment(1);
  const DoctorRun threaded = run_deployment(2);

  // --- Self-checks: the observability layer is only trustworthy if it is
  // deterministic and its evidence reproduces the decisions it explains.
  bool ok = true;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ok = false;
  };
  if (base.alerts == 0) fail("deployment raised no alerts to explain");
  if (!base.error.empty()) {
    std::fprintf(stderr, "FAIL: %s\n", base.error.c_str());
    ok = false;
  }
  if (base.provenance_jsonl != rerun.provenance_jsonl ||
      base.health_jsonl != rerun.health_jsonl) {
    fail("seeded report did not reproduce byte-for-byte across runs");
  }
  if (base.provenance_jsonl != threaded.provenance_jsonl ||
      base.health_jsonl != threaded.health_jsonl) {
    fail("report differs between threads=1 and threads=2");
  }

  // --- Assemble the operator-facing report: deployment health plus the
  // labeled-trial scoreboard.
  observe::HealthReport report = base.report;
  report.scoreboard = build_scoreboard(rules::parse_rules(
      rules::default_ruleset_text(), core::evaluation_rule_vars()));
  const std::string health_jsonl = report.to_jsonl();

  {
    std::ofstream f("jaal_doctor_provenance.jsonl");
    f << base.provenance_jsonl;
  }
  {
    std::ofstream f("jaal_doctor_health.jsonl");
    f << health_jsonl;
  }

  if (json) {
    std::fputs(health_jsonl.c_str(), stdout);
  } else {
    std::fputs(report.to_text().c_str(), stdout);
    std::printf("\n%zu alerts explained (%zu provenance records), "
                "%zu drift transitions, final caution %.2f\n",
                base.alerts, base.alerts, base.drift_events,
                base.final_caution);
    std::printf("wrote jaal_doctor_provenance.jsonl and "
                "jaal_doctor_health.jsonl\n");
    std::printf("determinism: provenance and health JSONL byte-identical "
                "across runs and thread counts\n");
  }
  return ok ? 0 : 1;
}
