// jaal_doctor — the detection-observability walkthrough: replay a seeded
// Trace-1 deployment, let the traffic shift mid-run, and print a ranked
// diagnosis of what the pipeline thinks of its own detection quality.
//
//   provenance   every alert carries its full causal chain (matched
//                centroids, margins vs tau_d1/tau_d2, threshold case,
//                feedback outcome); dumped as JSONL
//   drift        per-monitor summary-fidelity baselines (SVD energy,
//                k-means inertia, reconstruction error) flag the mid-run
//                traffic shift; the caution signal rises with it
//   scoreboard   a small labeled trial set grounds per-rule precision
//   self-check   the report must be byte-identical across two runs and
//                across threads=1 vs 2, and every alert's margins must
//                reproduce its threshold decision — exit 1 otherwise
//
//   store        the live run persists its operational timeline (per-epoch
//                metrics deltas + flight events) and the offline replay
//                must reproduce the live health report and SLO summary
//                byte-for-byte from the store alone
//
//   $ ./jaal_doctor                      # human-readable ranked diagnosis
//   $ ./jaal_doctor --json               # health JSONL on stdout (CI)
//   $ ./jaal_doctor --store DIR          # offline diagnosis from a store
//   $ ./jaal_doctor --store DIR --json   # offline timeline JSONL on stdout
//   $ ./jaal_doctor --store DIR --epoch N  # point query via the epoch index
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "jaal.hpp"

namespace {

using namespace jaal;

summarize::SummarizerConfig doctor_summarizer() {
  summarize::SummarizerConfig scfg;
  scfg.batch_size = 1000;
  scfg.min_batch = 400;
  scfg.rank = 12;
  scfg.centroids = 200;  // k/n = 0.2, the paper's sweet spot
  return scfg;
}

/// The observability knobs of the doctor's deployment.  The offline replay
/// (--store) must use the same knobs the live run had — the drift config
/// parameterizes the reconstructed detectors.
observe::ObserveConfig doctor_observe_config() {
  observe::ObserveConfig ocfg;
  // Six healthy epochs before the shift: let the EWMA baselines settle over
  // most of them so stationary jitter is not judged drift-worthy.
  ocfg.drift_config.warmup = 5;
  ocfg.flight_recorder = true;
  ocfg.slo = true;
  return ocfg;
}

/// Checks that an alert's provenance margins reproduce its threshold
/// decision (the acceptance bar for the causal chain: it must be evidence,
/// not decoration).  Returns an error description, empty when consistent.
std::string check_provenance(const inference::Alert& alert) {
  if (!alert.provenance) return "alert has no provenance attached";
  const observe::AlertProvenance& p = *alert.provenance;
  if (p.centroids.empty()) return "provenance has an empty evidence set";
  if (p.monitors.empty()) return "provenance names no contributing monitors";
  const bool strict = p.threshold_case == observe::ThresholdCase::kStrictMatch;
  for (const observe::CentroidEvidence& c : p.centroids) {
    // Margins must be the recorded thresholds minus the recorded distance.
    if (std::abs((p.tau_d1 - c.distance) - c.margin_d1) > 1e-12 ||
        std::abs((p.tau_d2 - c.distance) - c.margin_d2) > 1e-12) {
      return "centroid margins disagree with distance and thresholds";
    }
    // Every evidence centroid sits inside the threshold that admitted it.
    if (strict ? c.margin_d1 < 0.0 : c.margin_d2 < 0.0) {
      return "evidence centroid outside its admitting threshold";
    }
  }
  if (strict && p.strict_count < p.tau_c) {
    return "case-1 alert with strict count below tau_c";
  }
  if (!strict && (p.loose_count < p.tau_c || p.strict_count >= p.tau_c)) {
    return "case-3 alert whose counts do not straddle tau_c";
  }
  return {};
}

struct DoctorRun {
  std::string provenance_jsonl;
  std::string health_jsonl;  ///< Deployment report (scoreboard empty).
  std::string slo_jsonl;     ///< Live SLO summary (completeness SLI).
  observe::HealthReport report;
  std::size_t alerts = 0;
  std::size_t drift_events = 0;
  std::uint64_t flight_dumps = 0;  ///< Automatic regression dumps taken.
  double final_caution = 0.0;
  /// Wall-clock critical path of the slowest epoch close (display only —
  /// wall times are not part of any determinism check).
  std::optional<telemetry::CriticalPath> worst_profile;
  std::uint64_t worst_epoch = 0;
  std::string dominant_stage;  ///< SLO latency attribution, last epoch.
  std::string error;  ///< First provenance inconsistency, empty when clean.
};

/// One seeded deployment: six Trace-1 epochs carrying a distributed SYN
/// flood, then six epochs after the backbone mix shifts (Trace-2 port mix,
/// triple the rate, heavier flow tail) — the shift is what the drift
/// monitors are there to catch.  Mild transport loss keeps the degraded-mode
/// accounting non-trivial.  The run persists its operational timeline into
/// `store_dir` (wiped first) so the offline replay can be checked against
/// the live report.
DoctorRun run_deployment(std::size_t threads, const std::string& store_dir) {
  std::filesystem::remove_all(store_dir);  // fresh store, no resume
  telemetry::Telemetry tel;  // feeds the persisted per-epoch metrics deltas
  core::JaalConfig cfg;
  cfg.summarizer = doctor_summarizer();
  cfg.monitor_count = 2;
  cfg.epoch_seconds = 1.0;
  cfg.threads = threads;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.faults.seed = 42;
  cfg.faults.drop_rate = 0.05;
  cfg.observe = doctor_observe_config();
  cfg.telemetry = &tel;
  cfg.store_dir = store_dir;
  cfg.store_metrics = true;
  core::JaalController doctor(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              core::evaluation_rule_vars()));

  DoctorRun out;
  std::vector<std::shared_ptr<const observe::AlertProvenance>> records;
  std::uint64_t epoch_no = 0;
  auto consume = [&](const std::vector<core::EpochResult>& epochs) {
    for (const core::EpochResult& epoch : epochs) {
      out.drift_events += epoch.drift_events.size();
      out.final_caution = epoch.caution;
      if (epoch.profile) {
        if (!out.worst_profile || epoch.profile->root_inclusive_ms >
                                      out.worst_profile->root_inclusive_ms) {
          out.worst_profile = epoch.profile;
          out.worst_epoch = epoch_no;
        }
        out.dominant_stage = epoch.profile->dominant_stage;
      }
      ++epoch_no;
      for (const inference::Alert& alert : epoch.alerts) {
        ++out.alerts;
        if (out.error.empty()) out.error = check_provenance(alert);
        if (alert.provenance) records.push_back(alert.provenance);
      }
    }
  };

  {  // Phase 1: healthy Trace-1 baseline plus the flood from t=1 s.
    trace::TraceProfile profile = trace::trace1_profile();
    profile.packets_per_second = 2000.0;  // ~2000-pkt epochs: tau_c_scale = 1
    trace::BackgroundTraffic background(profile, 7);
    attack::AttackConfig atk;
    atk.victim_ip = core::evaluation_victim_ip();
    atk.packets_per_second = 5000.0;  // throttled to the 10% injection cap
    atk.start_time = 1.0;
    atk.seed = 11;
    attack::DistributedSynFlood flood(atk);
    trace::TrafficMix mix(background, {&flood}, 0.10);
    consume(doctor.run(mix, 6.0));
  }
  {  // Phase 2: the backbone shifts under the deployment.
    trace::TraceProfile shifted = trace::trace2_profile();
    shifted.packets_per_second = 6000.0;
    shifted.pareto_alpha = 1.05;  // much heavier elephants
    trace::BackgroundTraffic background(shifted, 21);
    consume(doctor.run(background, 6.0));
  }

  out.report = doctor.health_report();
  out.health_jsonl = out.report.to_jsonl();
  out.slo_jsonl = doctor.slo() != nullptr ? doctor.slo()->to_jsonl() : "";
  out.flight_dumps = doctor.flight_recorder() != nullptr
                         ? doctor.flight_recorder()->dumps_taken()
                         : 0;
  out.provenance_jsonl = observe::to_jsonl(records);
  return out;  // ~JaalController finalizes the store (sidecar indexes land)
}

/// Offline replay of one store directory, using the doctor deployment's
/// observability config (monitor count derived from the stored events).
store::StoreDiagnosis diagnose_dir(const std::string& dir,
                                   telemetry::Telemetry* tel) {
  const store::DeploymentStore ro(store::StoreConfig{dir, 64},
                                  /*writable=*/false, tel);
  store::StoreDiagnosisConfig dcfg;
  dcfg.observe = doctor_observe_config();
  return store::diagnose_store(ro, dcfg);
}

std::uint64_t counter_value(const telemetry::Telemetry& tel,
                            const std::string& name) {
  for (const auto& e : tel.metrics.snapshot().entries) {
    if (e.name == name) return e.counter;
  }
  return 0;
}

/// Offline mode: reconstruct the timeline/diagnosis from `dir` alone.
/// `epoch_query` < 0 means "whole timeline"; otherwise answer a point query
/// for that epoch through the secondary index and verify (via the
/// jaal_store_* telemetry) that the index, not a shard scan, answered it.
int run_store_mode(const std::string& dir, long long epoch_query, bool json) {
  telemetry::Telemetry tel;
  if (epoch_query >= 0) {
    const store::DeploymentStore ro(store::StoreConfig{dir, 64},
                                    /*writable=*/false, &tel);
    const auto epoch = static_cast<std::uint64_t>(epoch_query);
    const auto meta = ro.epoch_meta_at(epoch);
    if (!meta) {
      std::fprintf(stderr, "epoch %llu is not committed in %s\n",
                   static_cast<unsigned long long>(epoch), dir.c_str());
      return 1;
    }
    std::printf("{\"kind\":\"epoch_meta\",\"epoch\":%llu,\"end_time\":%.17g,"
                "\"packets\":%llu,\"report_fraction\":%.17g,"
                "\"caution\":%.17g}\n",
                static_cast<unsigned long long>(meta->epoch), meta->end_time,
                static_cast<unsigned long long>(meta->packets),
                meta->report_fraction, meta->caution);
    for (const observe::FlightEvent& ev : ro.events_at(epoch)) {
      std::printf("%s\n", observe::to_json(ev).c_str());
    }
    ro.each_alert_line_in_epoch(epoch,
                                [](std::uint32_t, std::string_view line) {
                                  std::printf("%.*s\n",
                                              static_cast<int>(line.size()),
                                              line.data());
                                  return true;
                                });
    // The acceptance bar for the sidecar index: the point queries above
    // must have been answered by index seeks, never a full shard scan.
    const std::uint64_t hits =
        counter_value(tel, "jaal_store_index_point_queries_total");
    const std::uint64_t fallbacks =
        counter_value(tel, "jaal_store_index_fallback_scans_total");
    std::fprintf(stderr,
                 "index: %llu point queries answered, %llu fallback scans, "
                 "%llu bytes visited\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(fallbacks),
                 static_cast<unsigned long long>(
                     counter_value(tel, "jaal_store_scan_bytes_total")));
    if (hits == 0 || fallbacks != 0) {
      std::fprintf(stderr, "FAIL: point query fell back to a shard scan\n");
      return 1;
    }
    return 0;
  }

  const store::StoreDiagnosis diag = diagnose_dir(dir, &tel);
  if (json) {
    std::fputs(diag.timeline_jsonl.c_str(), stdout);
  } else {
    std::printf("jaal_doctor --store %s: %llu epochs, %llu alerts, "
                "%llu flight events, %llu metrics records, %llu provenance "
                "records\n",
                dir.c_str(), static_cast<unsigned long long>(diag.epochs),
                static_cast<unsigned long long>(diag.alerts),
                static_cast<unsigned long long>(diag.flight_events),
                static_cast<unsigned long long>(diag.metrics_records),
                static_cast<unsigned long long>(diag.provenance_records));
    if (diag.shard_count > 1) {
      // Informational only: the timeline itself is shard-count-invariant.
      std::printf("written by a sharded inference tier (%llu shards)\n",
                  static_cast<unsigned long long>(diag.shard_count));
    }
    std::printf("health reconstruction %s, drift cross-check: %llu "
                "mismatched epochs\n\n",
                diag.health_complete ? "complete" : "partial (no ops stream)",
                static_cast<unsigned long long>(diag.drift_mismatches));
    std::fputs(diag.health.to_text().c_str(), stdout);
    if (!diag.slo_jsonl.empty()) std::fputs(diag.slo_jsonl.c_str(), stdout);
  }
  return diag.drift_mismatches == 0 ? 0 : 1;
}

/// Grounds the per-rule scoreboard in labeled trials: a few positives per
/// attack plus benign negatives, each decided by a fresh engine.
std::vector<observe::RuleScore> build_scoreboard(
    const std::vector<rules::Rule>& ruleset) {
  core::TrialConfig tcfg;
  tcfg.summarizer = doctor_summarizer();
  tcfg.monitor_count = 2;  // 2000-packet window: tau_c_scale = 1
  tcfg.profile = trace::trace1_profile();
  tcfg.attack_intensity_min = 1.0;
  tcfg.attack_intensity_max = 1.0;
  tcfg.seed = 5;
  const std::vector<packet::AttackType> attacks = {
      packet::AttackType::kDistributedSynFlood, packet::AttackType::kPortScan};
  const std::vector<core::Trial> trials =
      core::make_trial_set(attacks, 2, 2, tcfg);

  inference::EngineConfig ecfg;
  ecfg.default_thresholds = {0.008, 0.03};
  ecfg.feedback_enabled = true;
  ecfg.tau_c_scale = core::tau_c_scale_for(tcfg);
  ecfg.record_provenance = false;  // labels, not causal chains, matter here

  std::map<std::uint32_t, observe::RuleScore> scores;
  for (const rules::Rule& rule : ruleset) {
    observe::RuleScore& s = scores[rule.sid];
    s.sid = rule.sid;
    s.msg = rule.msg;
  }
  for (const core::Trial& trial : trials) {
    std::set<std::uint32_t> labeled;
    if (trial.injected != packet::AttackType::kNone) {
      for (std::uint32_t sid : core::sids_for(trial.injected)) {
        labeled.insert(sid);
        ++scores[sid].labeled_trials;
      }
    }
    shard::InferenceTier tier({}, ruleset, ecfg);
    std::set<std::uint32_t> fired;
    for (const inference::Alert& alert :
         tier.infer(trial.aggregate, trial.fetcher())) {
      fired.insert(alert.sid);
    }
    for (std::uint32_t sid : fired) {
      if (labeled.count(sid) > 0) {
        ++scores[sid].true_positives;
      } else {
        ++scores[sid].false_positives;
      }
    }
  }
  std::vector<observe::RuleScore> board;
  board.reserve(scores.size());
  for (auto& [sid, score] : scores) board.push_back(std::move(score));
  return board;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string store_dir;
  long long epoch_query = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--epoch") == 0 && i + 1 < argc) {
      epoch_query = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: jaal_doctor [--json] [--store DIR [--epoch N]]\n");
      return 2;
    }
  }
  if (!store_dir.empty()) {
    try {
      return run_store_mode(store_dir, epoch_query, json);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "jaal_doctor --store: %s\n", e.what());
      return 1;
    }
  }

  if (!json) {
    std::printf("jaal_doctor: replaying a seeded Trace-1 deployment "
                "(12 x 1 s epochs, traffic shift at t=6 s)\n");
  }
  const DoctorRun base = run_deployment(1, "jaal_doctor_store.1");
  const DoctorRun rerun = run_deployment(1, "jaal_doctor_store.2");
  const DoctorRun threaded = run_deployment(2, "jaal_doctor_store.3");

  // --- Self-checks: the observability layer is only trustworthy if it is
  // deterministic and its evidence reproduces the decisions it explains.
  bool ok = true;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ok = false;
  };
  if (base.alerts == 0) fail("deployment raised no alerts to explain");
  if (!base.error.empty()) {
    std::fprintf(stderr, "FAIL: %s\n", base.error.c_str());
    ok = false;
  }
  if (base.provenance_jsonl != rerun.provenance_jsonl ||
      base.health_jsonl != rerun.health_jsonl) {
    fail("seeded report did not reproduce byte-for-byte across runs");
  }
  if (base.provenance_jsonl != threaded.provenance_jsonl ||
      base.health_jsonl != threaded.health_jsonl) {
    fail("report differs between threads=1 and threads=2");
  }
  if (base.slo_jsonl.empty() || base.slo_jsonl != rerun.slo_jsonl ||
      base.slo_jsonl != threaded.slo_jsonl) {
    fail("SLO summary not deterministic across runs / thread counts");
  }
  if (base.flight_dumps == 0) {
    fail("no automatic flight dump despite the traffic-shift regression");
  }

  // --- Store round trip: the offline replay must reproduce the live
  // diagnosis byte-for-byte from the persisted records alone, on every
  // store the three runs wrote.
  std::string timeline_jsonl;
  try {
    telemetry::Telemetry store_tel;
    const store::StoreDiagnosis diag =
        diagnose_dir("jaal_doctor_store.1", &store_tel);
    timeline_jsonl = diag.timeline_jsonl;
    if (diag.health.to_jsonl() != base.health_jsonl) {
      fail("offline health report differs from the live one");
    }
    if (diag.slo_jsonl != base.slo_jsonl) {
      fail("offline SLO summary differs from the live one");
    }
    if (!diag.health_complete) {
      fail("stored epochs missing their flight-event close records");
    }
    if (diag.drift_mismatches != 0) {
      fail("stored drift events disagree with the re-derived transitions");
    }
    if (diag.metrics_records != diag.epochs) {
      fail("not every committed epoch carries a metrics delta");
    }
    const store::StoreDiagnosis diag2 =
        diagnose_dir("jaal_doctor_store.2", nullptr);
    const store::StoreDiagnosis diag3 =
        diagnose_dir("jaal_doctor_store.3", nullptr);
    if (diag2.timeline_jsonl != timeline_jsonl ||
        diag3.timeline_jsonl != timeline_jsonl) {
      fail("persisted timeline differs across runs / thread counts");
    }

    // Point queries must be served by the sidecar epoch index, not scans.
    {
      telemetry::Telemetry point_tel;
      const store::DeploymentStore ro(
          store::StoreConfig{"jaal_doctor_store.1", 64},
          /*writable=*/false, &point_tel);
      const std::uint64_t probe = diag.epochs / 2;
      const bool have_meta = ro.epoch_meta_at(probe).has_value();
      const bool have_events = !ro.events_at(probe).empty();
      if (!have_meta || !have_events) {
        fail("point query missed a committed epoch");
      }
      if (counter_value(point_tel, "jaal_store_index_point_queries_total") ==
              0 ||
          counter_value(point_tel, "jaal_store_index_fallback_scans_total") !=
              0) {
        fail("--epoch point query fell back to a shard scan");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: store round trip: %s\n", e.what());
    ok = false;
  }

  // --- Assemble the operator-facing report: deployment health plus the
  // labeled-trial scoreboard.
  observe::HealthReport report = base.report;
  report.scoreboard = build_scoreboard(rules::parse_rules(
      rules::default_ruleset_text(), core::evaluation_rule_vars()));
  const std::string health_jsonl = report.to_jsonl();

  {
    std::ofstream f("jaal_doctor_provenance.jsonl");
    f << base.provenance_jsonl;
  }
  {
    std::ofstream f("jaal_doctor_health.jsonl");
    f << health_jsonl;
  }
  {
    std::ofstream f("jaal_doctor_timeline.jsonl");
    f << timeline_jsonl;
  }

  if (json) {
    std::fputs(health_jsonl.c_str(), stdout);
  } else {
    std::fputs(report.to_text().c_str(), stdout);
    std::printf("\n%zu alerts explained (%zu provenance records), "
                "%zu drift transitions, final caution %.2f\n",
                base.alerts, base.alerts, base.drift_events,
                base.final_caution);
    if (base.worst_profile) {
      // Where did the wall clock go?  The slowest epoch close's critical
      // path, straight from the live profiler (wall times: informational,
      // never part of the determinism checks above).
      std::printf("\nslowest epoch close: epoch %llu (%.3f ms); SLO latency "
                  "attribution: %s\n",
                  static_cast<unsigned long long>(base.worst_epoch),
                  base.worst_profile->root_inclusive_ms,
                  base.dominant_stage.c_str());
      std::fputs(base.worst_profile->to_text().c_str(), stdout);
    }
    std::fputs(base.slo_jsonl.c_str(), stdout);
    std::printf("wrote jaal_doctor_provenance.jsonl, jaal_doctor_health.jsonl"
                " and jaal_doctor_timeline.jsonl\n");
    std::printf("determinism: provenance, health and store timeline JSONL "
                "byte-identical across runs and thread counts\n");
    std::printf("store round trip: offline diagnosis from "
                "jaal_doctor_store.1 reproduced the live report%s\n",
                ok ? "" : " [FAILED]");
  }
  return ok ? 0 : 1;
}
