// Trace utility: generate labelled evaluation traffic into pcap files and
// inspect existing TCP/IPv4 captures.
//
//   $ ./trace_tool generate out.pcap 20000 [attack] [seed]
//       attack: none | syn_flood | distributed_syn_flood | port_scan |
//               ssh_brute_force | sockstress | mirai_scan
//   $ ./trace_tool inspect capture.pcap
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "jaal.hpp"

namespace {

using namespace jaal;

int usage() {
  std::printf(
      "usage:\n"
      "  trace_tool generate <out.pcap> <packets> [attack] [seed]\n"
      "  trace_tool inspect <in.pcap>\n");
  return 2;
}

std::unique_ptr<attack::AttackSource> make_attack(const std::string& name,
                                                  std::uint64_t seed) {
  attack::AttackConfig cfg;
  cfg.victim_ip = core::evaluation_victim_ip();
  cfg.packets_per_second = 10000.0;
  cfg.seed = seed;
  if (name == "syn_flood") {
    cfg.source_count = 1;
    return std::make_unique<attack::SynFlood>(cfg);
  }
  if (name == "distributed_syn_flood") {
    return std::make_unique<attack::DistributedSynFlood>(cfg);
  }
  if (name == "port_scan") return std::make_unique<attack::PortScan>(cfg);
  if (name == "ssh_brute_force") {
    return std::make_unique<attack::SshBruteForce>(cfg);
  }
  if (name == "sockstress") return std::make_unique<attack::Sockstress>(cfg);
  if (name == "mirai_scan") return std::make_unique<attack::MiraiScan>(cfg);
  return nullptr;
}

int generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string path = argv[2];
  const std::size_t count = std::stoul(argv[3]);
  const std::string attack_name = argc > 4 ? argv[4] : "none";
  const std::uint64_t seed = argc > 5 ? std::stoull(argv[5]) : 1;

  trace::BackgroundTraffic background(trace::trace1_profile(), seed);
  std::unique_ptr<attack::AttackSource> attacker;
  std::vector<trace::PacketSource*> attacks;
  if (attack_name != "none") {
    attacker = make_attack(attack_name, seed + 1);
    if (!attacker) {
      std::printf("unknown attack '%s'\n", attack_name.c_str());
      return 2;
    }
    attacks.push_back(attacker.get());
  }
  trace::TrafficMix mix(background, attacks, 0.10);
  const auto packets = trace::take(mix, count);
  trace::write_pcap_file(path, packets);
  std::printf("wrote %zu packets to %s (%llu attack, %llu suppressed by "
              "the 10%% cap)\n",
              packets.size(), path.c_str(),
              static_cast<unsigned long long>(mix.attack_emitted()),
              static_cast<unsigned long long>(mix.attack_dropped()));
  return 0;
}

int inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto packets = trace::read_pcap_file(argv[2]);
  if (packets.empty()) {
    std::printf("no TCP/IPv4 packets found\n");
    return 0;
  }
  std::map<std::uint16_t, std::size_t> dst_ports;
  std::map<std::uint8_t, std::size_t> flag_mix;
  std::size_t syn = 0, bytes = 0;
  for (const auto& pkt : packets) {
    ++dst_ports[pkt.tcp.dst_port];
    ++flag_mix[pkt.tcp.flags];
    syn += pkt.tcp.flags == 0x02 ? 1 : 0;
    bytes += pkt.ip.total_length;
  }
  const double span = packets.back().timestamp - packets.front().timestamp;
  std::printf("%zu packets, %.3f s, %.0f pps, %zu bytes total\n",
              packets.size(), span,
              span > 0 ? packets.size() / span : 0.0, bytes);
  std::printf("pure-SYN share: %.2f%%\n", 100.0 * syn / packets.size());

  std::printf("top destination ports:\n");
  std::vector<std::pair<std::size_t, std::uint16_t>> by_count;
  for (const auto& [port, n] : dst_ports) by_count.emplace_back(n, port);
  std::sort(by_count.rbegin(), by_count.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(8, by_count.size()); ++i) {
    std::printf("  %5u: %zu\n", by_count[i].second, by_count[i].first);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "generate") == 0) return generate(argc, argv);
  if (std::strcmp(argv[1], "inspect") == 0) return inspect(argc, argv);
  return usage();
}
