// ISP deployment planning: place monitors on a 367-router Abovenet-like
// topology, balance flows across them with the greedy assigner, and compare
// the network cost of Jaal summaries against raw-packet replication.
//
//   $ ./isp_deployment
#include <cstdio>

#include "jaal.hpp"

int main() {
  using namespace jaal;
  using namespace jaal::netsim;

  // 1. The network: RocketFuel-like ISP map ("topology 1").
  const Topology topo = make_isp_topology(abovenet_profile(), 1);
  std::printf("topology: %s, %zu routers, %zu links\n", topo.name().c_str(),
              topo.node_count(), topo.link_count());
  std::size_t edge = 0, agg = 0, backbone = 0;
  for (const Router& r : topo.routers()) {
    switch (r.role) {
      case RouterRole::kEdge: ++edge; break;
      case RouterRole::kAggregation: ++agg; break;
      case RouterRole::kBackbone: ++backbone; break;
    }
  }
  std::printf("  roles: %zu edge, %zu aggregation, %zu backbone\n", edge, agg,
              backbone);

  // 2. Monitor placement: 25 highest-degree transit routers.
  const auto monitors = topo.default_monitor_sites(25);
  std::printf("placed %zu monitors (first five: ", monitors.size());
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%u%s", monitors[i], i + 1 < 5 ? ", " : ")\n");
  }

  // 3. Flow assignment: flows grouped by the monitors on their routed path;
  //    greedy least-loaded assignment within each group (§6).
  assign::WorkloadConfig wcfg;
  wcfg.monitor_count = monitors.size();
  wcfg.group_count = 12;
  wcfg.flow_count = 6000;
  const assign::Workload workload = assign::make_workload(wcfg);
  assign::GreedyAssigner greedy;
  const auto outcome = assign::simulate_assignment(
      greedy, workload.flows, workload.groups, monitors.size(), 2.0);
  double total_load = 0.0;
  for (double load : outcome.time_avg_load) total_load += load;
  std::printf(
      "\nflow assignment (greedy, P=2s): max monitor load %.0f, mean %.0f "
      "(balance ratio %.2f)\n",
      outcome.max_time_avg_load, total_load / monitors.size(),
      outcome.max_time_avg_load / (total_load / monitors.size()));

  // 4. Network cost: what would raw replication do to this network, and
  //    where does Jaal's ~35% summary budget land?
  const auto demands = random_demands(topo, 400, 8000.0 * 12.0, 7);
  ReplicationExperiment experiment(topo, monitors, monitors.front(), demands,
                                   2.0e7);
  std::printf("\n%-14s %-18s %-16s\n", "replicated %", "throughput loss %",
              "evidence delivered %");
  for (double f : {0.35, 0.7, 1.0}) {
    const ReplicationResult r = experiment.evaluate(f);
    const double loss = 1.0 - (1.0 - r.throughput_loss) *
                                  (1.0 - r.router_throughput_loss);
    std::printf("%-14.0f %-18.1f %-16.1f\n", f * 100.0, 100.0 * loss,
                100.0 * r.copy_delivery_fraction *
                    r.engine_processing_fraction);
  }
  std::printf("\nJaal ships summaries worth ~35%% of raw bytes: the first\n"
              "row bounds its impact; raw replication needs the last.\n");
  return 0;
}
