// ISP deployment planning: place monitors on a 367-router Abovenet-like
// topology, balance flows across them with the greedy assigner, and compare
// the network cost of Jaal summaries against raw-packet replication — then
// run a live detection slice on a sharded inference tier and check it is
// byte-identical to the single-engine path (the artifact CI uploads).
//
//   $ ./isp_deployment [--shards N]    # N engine shards (default 4)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jaal.hpp"

namespace {

using namespace jaal;

/// One seeded detection slice (background + distributed SYN flood, 8
/// monitors) on a tier with `shards` engine shards.  Returns the epochs and
/// a serialized alert fingerprint for the cross-shard-count identity check.
struct SliceResult {
  std::vector<core::EpochResult> epochs;
  std::string fingerprint;
  std::size_t alerts = 0;
};

SliceResult run_slice(std::size_t shards) {
  core::JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.monitor_count = 8;
  cfg.epoch_seconds = 0.04;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.sharding.shards = shards;

  core::JaalController controller(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              core::evaluation_rule_vars()));
  trace::BackgroundTraffic bg(trace::trace1_profile(), 11);
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.start_time = 0.03;
  acfg.packets_per_second = 5000.0;
  acfg.seed = 3;
  attack::SynFlood flood(acfg);
  trace::TrafficMix mix(bg, {&flood}, 0.10);

  SliceResult out;
  out.epochs = controller.run(mix, 0.3);
  std::ostringstream fp;
  for (const core::EpochResult& e : out.epochs) {
    for (const inference::Alert& a : e.alerts) {
      fp << inference::alert_to_json(a, e.end_time) << '\n';
      ++out.alerts;
    }
  }
  out.fingerprint = fp.str();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jaal::netsim;

  std::size_t shards = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  if (shards == 0) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }

  // 1. The network: RocketFuel-like ISP map ("topology 1").
  const Topology topo = make_isp_topology(abovenet_profile(), 1);
  std::printf("topology: %s, %zu routers, %zu links\n", topo.name().c_str(),
              topo.node_count(), topo.link_count());
  std::size_t edge = 0, agg = 0, backbone = 0;
  for (const Router& r : topo.routers()) {
    switch (r.role) {
      case RouterRole::kEdge: ++edge; break;
      case RouterRole::kAggregation: ++agg; break;
      case RouterRole::kBackbone: ++backbone; break;
    }
  }
  std::printf("  roles: %zu edge, %zu aggregation, %zu backbone\n", edge, agg,
              backbone);

  // 2. Monitor placement: 25 highest-degree transit routers.
  const auto monitors = topo.default_monitor_sites(25);
  std::printf("placed %zu monitors (first five: ", monitors.size());
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%u%s", monitors[i], i + 1 < 5 ? ", " : ")\n");
  }

  // 3. Flow assignment: flows grouped by the monitors on their routed path;
  //    greedy least-loaded assignment within each group (§6).
  assign::WorkloadConfig wcfg;
  wcfg.monitor_count = monitors.size();
  wcfg.group_count = 12;
  wcfg.flow_count = 6000;
  const assign::Workload workload = assign::make_workload(wcfg);
  assign::GreedyAssigner greedy;
  const auto outcome = assign::simulate_assignment(
      greedy, workload.flows, workload.groups, monitors.size(), 2.0);
  double total_load = 0.0;
  for (double load : outcome.time_avg_load) total_load += load;
  std::printf(
      "\nflow assignment (greedy, P=2s): max monitor load %.0f, mean %.0f "
      "(balance ratio %.2f)\n",
      outcome.max_time_avg_load, total_load / monitors.size(),
      outcome.max_time_avg_load / (total_load / monitors.size()));

  // 4. Network cost: what would raw replication do to this network, and
  //    where does Jaal's ~35% summary budget land?
  const auto demands = random_demands(topo, 400, 8000.0 * 12.0, 7);
  ReplicationExperiment experiment(topo, monitors, monitors.front(), demands,
                                   2.0e7);
  std::printf("\n%-14s %-18s %-16s\n", "replicated %", "throughput loss %",
              "evidence delivered %");
  for (double f : {0.35, 0.7, 1.0}) {
    const ReplicationResult r = experiment.evaluate(f);
    const double loss = 1.0 - (1.0 - r.throughput_loss) *
                                  (1.0 - r.router_throughput_loss);
    std::printf("%-14.0f %-18.1f %-16.1f\n", f * 100.0, 100.0 * loss,
                100.0 * r.copy_delivery_fraction *
                    r.engine_processing_fraction);
  }
  std::printf("\nJaal ships summaries worth ~35%% of raw bytes: the first\n"
              "row bounds its impact; raw replication needs the last.\n");

  // 5. Live detection slice on a sharded inference tier: the same seeded
  //    traffic through 1 shard and through `shards` shards must alert
  //    byte-for-byte identically — sharding is a deployment knob, not a
  //    semantic one.
  std::printf("\nsharded inference tier (%zu shard%s vs single engine):\n",
              shards, shards == 1 ? "" : "s");
  const SliceResult single = run_slice(1);
  const SliceResult sharded = run_slice(shards);
  const bool identical = sharded.fingerprint == single.fingerprint;
  std::printf("  %zu epochs, %zu alert(s); byte-identical to single "
              "engine: %s\n",
              sharded.epochs.size(), sharded.alerts,
              identical ? "yes" : "NO");

  struct PerShard {
    std::uint64_t summaries = 0, rows = 0, packets = 0;
  };
  std::vector<PerShard> totals(shards);
  for (const core::EpochResult& e : sharded.epochs) {
    for (const shard::ShardEpochStats& s : e.shards) {
      totals[s.shard].summaries += s.summaries;
      totals[s.shard].rows += s.rows;
      totals[s.shard].packets += s.packets;
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    std::printf("  shard %zu: %llu summaries, %llu rows, %llu packets\n", s,
                static_cast<unsigned long long>(totals[s].summaries),
                static_cast<unsigned long long>(totals[s].rows),
                static_cast<unsigned long long>(totals[s].packets));
  }

  // The CI artifact: machine-readable record of the run and the check.
  {
    std::ofstream out("isp_deployment_sharded.json");
    out << "{\"shards\":" << shards
        << ",\"epochs\":" << sharded.epochs.size()
        << ",\"alerts\":" << sharded.alerts
        << ",\"byte_identical_to_single_engine\":"
        << (identical ? "true" : "false") << ",\"per_shard\":[";
    for (std::size_t s = 0; s < shards; ++s) {
      out << (s ? "," : "") << "{\"shard\":" << s
          << ",\"summaries\":" << totals[s].summaries
          << ",\"rows\":" << totals[s].rows
          << ",\"packets\":" << totals[s].packets << "}";
    }
    out << "]}\n";
  }
  std::printf("  artifact written to isp_deployment_sharded.json\n");

  if (sharded.alerts == 0) {
    std::printf("FAIL: sharded slice raised no alerts\n");
    return 1;
  }
  if (!identical) {
    std::printf("FAIL: sharded alerts diverged from the single engine\n");
    return 1;
  }
  return 0;
}
