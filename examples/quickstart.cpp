// Quickstart: the smallest end-to-end Jaal deployment.
//
// Builds background traffic with an injected distributed SYN flood, stands
// up a JaalController (monitors + central inference engine with the
// feedback loop), runs a few epochs, and prints the alerts plus the
// communication savings versus shipping raw headers.
//
//   $ ./quickstart
#include <cstdio>
#include <fstream>

#include "jaal.hpp"

int main() {
  using namespace jaal;

  // 1. The protected network and the detection rules.  The built-in rule
  //    set covers the paper's five attacks; bring your own Snort-subset
  //    rules with rules::parse_rules().
  const auto ruleset = rules::parse_rules(rules::default_ruleset_text(),
                                          core::evaluation_rule_vars());
  std::printf("loaded %zu rules\n", ruleset.size());

  // 2. Traffic: MAWI-like backbone background plus a DDoS aimed at a host
  //    inside the home network, throttled to 10%% of the stream.
  trace::BackgroundTraffic background(trace::trace1_profile(), /*seed=*/1);
  attack::AttackConfig attack_cfg;
  attack_cfg.victim_ip = core::evaluation_victim_ip();
  attack_cfg.packets_per_second = 20000.0;
  attack_cfg.start_time = 0.10;  // the flood begins mid-run
  attack_cfg.seed = 2;
  attack::DistributedSynFlood flood(attack_cfg);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  // 3. The deployment: 4 monitors summarizing n=1000-packet batches down
  //    to k=200 rank-12 centroids, a central engine with the two-threshold
  //    feedback loop.
  core::JaalConfig cfg;
  cfg.monitor_count = 4;
  cfg.epoch_seconds = 0.08;  // ~1000 packets/monitor/epoch at this rate
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 300;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  cfg.engine.default_thresholds = {0.008, 0.03};  // strict, loose (feedback)
  cfg.engine.feedback_enabled = true;
  // §10 extension: verify every alert against raw packets before raising it
  // (suppresses near-miss cross-matches at a small bandwidth cost).
  cfg.engine.verify_all_alerts = true;
  core::JaalController jaal(cfg, ruleset);

  // 4. Run half a second of traffic; report to the console and to a JSONL
  //    alert log (what a SIEM would ingest).
  std::ofstream log_file("jaal_alerts.jsonl");
  core::AlertLogger logger(log_file);
  const auto epochs = jaal.run(mix, 0.5);
  for (const auto& epoch : epochs) {
    (void)logger.log_epoch(epoch.end_time, epoch.alerts);
    if (epoch.alerts.empty()) continue;
    std::printf("t=%.2fs: %zu alert(s)\n", epoch.end_time,
                epoch.alerts.size());
    for (const auto& alert : epoch.alerts) {
      std::printf("  sid %u: %s (matched %llu packets%s%s)\n", alert.sid,
                  alert.msg.c_str(),
                  static_cast<unsigned long long>(alert.matched_packets),
                  alert.distributed ? ", distributed" : "",
                  alert.via_feedback ? ", confirmed via raw feedback" : "");
    }
  }

  const core::CommStats comm = jaal.comm();
  std::printf(
      "\ncommunication: raw headers %llu bytes -> summaries %llu + "
      "feedback %llu bytes (%.0f%% of raw, %.0f%% saved)\n",
      static_cast<unsigned long long>(comm.raw_header_bytes),
      static_cast<unsigned long long>(comm.summary_bytes),
      static_cast<unsigned long long>(comm.feedback_bytes),
      100.0 * comm.overhead_ratio(), 100.0 * comm.savings());
  std::printf("alert log: jaal_alerts.jsonl (%llu lines)\n",
              static_cast<unsigned long long>(logger.lines_written()));
  return 0;
}
