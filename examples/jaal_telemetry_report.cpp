// jaal_telemetry_report — the observability walkthrough: one seeded Trace-1
// deployment run end to end with the full telemetry stack attached, then the
// cost of detection reported next to its quality.
//
//   metrics      every layer writes into one MetricsRegistry (monitors,
//                summarizers, inference engine, thread-pool runtime, links)
//   traces       each epoch is one causal trace: observe -> summarize(svd,
//                kmeans) -> ship -> aggregate -> infer -> postprocess ->
//                feedback, with deterministic span ids
//   links        the monitor->controller ship leg crosses simulated
//                LinkQueues (finite buffers, tail drops, sim-time keyed)
//   exports      Prometheus text + JSONL dump written beside the binary
//   ROC          a small threshold sweep so cost sits next to quality
//
//   $ ./jaal_telemetry_report
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "jaal.hpp"
#include "telemetry/chrome_trace.hpp"

namespace {

using jaal::telemetry::MetricsSnapshot;

const MetricsSnapshot::Entry* find_metric(const MetricsSnapshot& snap,
                                          const std::string& name) {
  for (const auto& e : snap.entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

double counter_of(const MetricsSnapshot& snap, const std::string& name) {
  const auto* e = find_metric(snap, name);
  return e == nullptr ? 0.0 : static_cast<double>(e->counter);
}

// Sums a labeled counter family, e.g. jaal_inference_alerts_total{sid="..."}
// across all sids (the flat total Prometheus would compute with sum by()).
double counter_family_sum(const MetricsSnapshot& snap,
                          const std::string& base) {
  double sum = 0.0;
  const std::string prefix = base + "{";
  for (const auto& e : snap.entries) {
    if (e.name == base || e.name.rfind(prefix, 0) == 0) {
      sum += static_cast<double>(e.counter);
    }
  }
  return sum;
}

void print_histogram_row(const MetricsSnapshot& snap, const std::string& name,
                         const char* label) {
  const auto* e = find_metric(snap, name);
  if (e == nullptr || e->histogram.count == 0) return;
  const auto& h = e->histogram;
  std::printf("  %-26s %6llu obs   mean %8.3f   max %8.3f\n", label,
              static_cast<unsigned long long>(h.count),
              h.sum / static_cast<double>(h.count), h.max);
}

}  // namespace

int main() {
  using namespace jaal;

  telemetry::Telemetry tel;

  // --- 1. A seeded Trace-1 deployment: MAWI-like background (scaled to a
  // fast smoke-test rate) plus a distributed SYN flood, flow-hashed over two
  // monitors at the paper's operating point (n=1000, r=12, k=200).
  trace::TraceProfile profile = trace::trace1_profile();
  profile.packets_per_second = 2000.0;  // ~2000-pkt epochs: tau_c_scale = 1
  trace::BackgroundTraffic background(profile, 7);
  attack::AttackConfig atk;
  atk.victim_ip = core::evaluation_victim_ip();
  atk.packets_per_second = 5000.0;  // throttled to the 10% injection cap
  atk.start_time = 1.0;
  atk.seed = 11;
  attack::DistributedSynFlood flood(atk);
  trace::TrafficMix mix(background, {&flood}, 0.10);

  core::JaalConfig cfg;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 400;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;  // k/n = 0.2, the paper's sweet spot
  cfg.monitor_count = 2;
  cfg.epoch_seconds = 1.0;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.telemetry = &tel;
  const auto ruleset = rules::parse_rules(rules::default_ruleset_text(),
                                          core::evaluation_rule_vars());
  core::JaalController controller(cfg, ruleset);

  // --- 2. The ship leg: each monitor's summaries cross a simulated link
  // with a finite queue.  Stats are keyed by simulated time, so drop logs
  // and high-water marks are identical across runs.
  netsim::EventQueue events;
  std::vector<std::unique_ptr<netsim::LinkQueue>> links;
  for (std::size_t m = 0; m < cfg.monitor_count; ++m) {
    netsim::LinkConfig lcfg;
    lcfg.name = "m" + std::to_string(m) + "-ctrl";
    lcfg.rate_bytes_per_s = 250e3;
    lcfg.queue_limit_bytes = 8 * 1024;
    links.push_back(std::make_unique<netsim::LinkQueue>(events, lcfg));
    links.back()->set_telemetry(&tel);
  }
  std::vector<std::uint64_t> shipped(cfg.monitor_count, 0);

  std::printf("running 6 simulated seconds of Trace-1 + DDoS "
              "(telemetry attached)\n");
  const double start = mix.peek_time();
  const double duration = 6.0;
  double epoch_end = start + cfg.epoch_seconds;
  std::size_t alerts_total = 0;
  std::size_t epochs_closed = 0;
  MetricsSnapshot warmup_snap;  // registry state after the first 3 epochs
  telemetry::ProfileReport profile_report;  // cross-epoch critical paths

  auto close_and_ship = [&](double t) {
    const core::EpochResult result = controller.close_epoch(t);
    alerts_total += result.alerts.size();
    if (result.profile) profile_report.add(*result.profile);
    // Drain the event queue up to the epoch boundary, then offer this
    // epoch's summary bytes onto each monitor's link in MTU-sized frames.
    (void)events.run_until(t);
    for (std::size_t m = 0; m < links.size(); ++m) {
      const std::uint64_t total = controller.monitors()[m].comm().summary_bytes;
      std::uint64_t to_ship = total - shipped[m];
      shipped[m] = total;
      while (to_ship > 0) {
        const std::size_t frame =
            static_cast<std::size_t>(to_ship > 1500 ? 1500 : to_ship);
        (void)links[m]->offer(frame);
        to_ship -= frame;
      }
    }
    std::printf("  t=%.1fs: %zu/%zu monitors reported, %llu pkts, "
                "%zu alerts\n",
                t, result.monitors_reporting, controller.monitors().size(),
                static_cast<unsigned long long>(result.packets),
                result.alerts.size());
    if (++epochs_closed == 3) warmup_snap = tel.metrics.snapshot();
  };

  while (mix.peek_time() - start < duration) {
    if (mix.peek_time() >= epoch_end) {
      close_and_ship(epoch_end);
      epoch_end += cfg.epoch_seconds;
      continue;
    }
    controller.ingest(mix.next());
  }
  close_and_ship(epoch_end);
  (void)events.run_until(epoch_end + 1.0);  // let the links drain
  // Snapshot here so the ROC sweep's cost can be isolated with
  // MetricsSnapshot::diff below.
  const MetricsSnapshot deployment_snap = tel.metrics.snapshot();

  // --- 3. A small ROC sweep so the cost report sits next to the quality
  // numbers it buys.
  core::TrialConfig tcfg;
  tcfg.summarizer = cfg.summarizer;
  tcfg.monitor_count = 2;  // 2000-packet window: tau_c_scale = 1
  tcfg.profile = trace::trace1_profile();
  tcfg.attack_intensity_min = 1.0;
  tcfg.attack_intensity_max = 1.0;
  tcfg.seed = 5;
  const packet::AttackType target = packet::AttackType::kDistributedSynFlood;
  const std::vector<packet::AttackType> attacks = {target};
  const auto trials = core::make_trial_set(attacks, 3, 3, tcfg);
  const std::vector<double> taus = {0.002, 0.008, 0.02, 0.06};
  const std::vector<double> scales = {1.0};
  const core::RocCurve roc = core::roc_sweep(
      trials, target, ruleset, taus, scales, core::tau_c_scale_for(tcfg));

  // --- 4. The cost report, read back from the registry.
  const MetricsSnapshot snap = tel.metrics.snapshot();
  std::printf("\n----- detection quality (distributed SYN flood) -----\n");
  std::printf("  deployment run: %zu alerts over %.0f s\n", alerts_total,
              duration);
  std::printf("  ROC sweep (%zu trials): AUC = %.3f, TPR@FPR<=0.10 = %.3f\n",
              trials.size(), roc.auc(), roc.tpr_at_fpr(0.10));

  std::printf("\n----- what it cost -----\n");
  std::printf("  packets observed          %.0f (malformed %.0f, "
              "oversized %.0f dropped)\n",
              counter_of(snap, "jaal_monitor_packets_observed_total"),
              counter_of(snap, "jaal_monitor_packets_malformed_total"),
              counter_of(snap, "jaal_monitor_packets_oversized_total"));
  std::printf("  batches summarized        %.0f (%.0f split / %.0f combined "
              "format, %.0f silent epochs)\n",
              counter_of(snap, "jaal_summarize_batches_total"),
              counter_of(snap, "jaal_summarize_split_format_total"),
              counter_of(snap, "jaal_summarize_combined_format_total"),
              counter_of(snap, "jaal_monitor_silent_epochs_total"));
  const core::CommStats comm = controller.comm();
  std::printf("  bytes: %llu raw -> %llu summary + %llu feedback "
              "(%.1f%% of raw)\n",
              static_cast<unsigned long long>(comm.raw_header_bytes),
              static_cast<unsigned long long>(comm.summary_bytes),
              static_cast<unsigned long long>(comm.feedback_bytes),
              100.0 * comm.overhead_ratio());
  print_histogram_row(snap, "jaal_summarize_svd_ms", "svd ms");
  print_histogram_row(snap, "jaal_summarize_svd_sweeps", "svd sweeps");
  print_histogram_row(snap, "jaal_summarize_kmeans_ms", "kmeans ms");
  print_histogram_row(snap, "jaal_summarize_kmeans_iterations",
                      "kmeans iterations");
  std::printf("  inference: %.0f questions (%.0f matched), %.0f alerts, "
              "%.0f feedback requests, %.0f raw packets pulled\n",
              counter_of(snap, "jaal_inference_questions_evaluated_total"),
              counter_of(snap, "jaal_inference_questions_matched_total"),
              counter_family_sum(snap, "jaal_inference_alerts_total"),
              counter_of(snap, "jaal_inference_feedback_requests_total"),
              counter_of(snap, "jaal_inference_raw_packets_fetched_total"));

  // What the post-warmup epochs alone cost: the registry is monotonic, so
  // the window between two snapshots is just MetricsSnapshot::diff.
  const MetricsSnapshot window = deployment_snap.diff(warmup_snap);
  std::printf("\n----- epochs 4..%zu only (MetricsSnapshot::diff) -----\n",
              epochs_closed);
  std::printf("  packets observed          %.0f\n",
              counter_of(window, "jaal_monitor_packets_observed_total"));
  std::printf("  batches summarized        %.0f\n",
              counter_of(window, "jaal_summarize_batches_total"));
  std::printf("  alerts raised             %.0f\n",
              counter_family_sum(window, "jaal_inference_alerts_total"));

  std::printf("\n----- ship links (simulated, deterministic) -----\n");
  for (const auto& link : links) {
    std::printf("  %-10s forwarded %llu msgs / %llu bytes, dropped %llu "
                "(high water %zu B)\n",
                link->config().name.c_str(),
                static_cast<unsigned long long>(link->messages_forwarded()),
                static_cast<unsigned long long>(link->bytes_forwarded()),
                static_cast<unsigned long long>(link->drops()),
                link->queue_high_water_bytes());
  }

  std::printf("\n----- trace spans -----\n");
  const auto spans = tel.tracer.records();
  std::size_t svd_spans = 0, feedback_spans = 0;
  for (const auto& s : spans) {
    svd_spans += s.name == "svd" ? 1 : 0;
    feedback_spans += s.name == "feedback" ? 1 : 0;
  }
  // Highest trace id + 1 == epoch count (the striped tracer returns spans
  // grouped by stripe, so the last record is not necessarily the newest).
  std::uint64_t max_trace = 0;
  for (const auto& s : spans) max_trace = std::max(max_trace, s.trace_id);
  std::printf("  %zu spans across %llu epoch traces "
              "(%zu svd, %zu feedback)\n",
              spans.size(),
              static_cast<unsigned long long>(
                  spans.empty() ? 0 : max_trace + 1),
              svd_spans, feedback_spans);

  // --- 4b. Where the wall clock went: the cross-epoch critical-path table
  // from the per-epoch profiler (stage self-times, % of total, how often
  // each stage sat on the longest path).
  std::printf("\n----- critical path (per-epoch profiler) -----\n");
  std::fputs(profile_report.to_text().c_str(), stdout);

  // --- 5. The sharded tier's per-shard series: re-run a short sharded
  // deployment with its own registry.  jaal_shard_*{shard="..."} counters
  // are registered only when shards > 1, so the main run's metric set above
  // is untouched — and the persisted ops timeline elides them either way
  // (telemetry::is_tier_shape_metric), keeping stores byte-identical across
  // shard counts.
  {
    telemetry::Telemetry shard_tel;
    core::JaalConfig scfg = cfg;
    scfg.telemetry = &shard_tel;
    scfg.monitor_count = 4;
    scfg.sharding.shards = 2;
    core::JaalController sharded(scfg, ruleset);
    trace::BackgroundTraffic bg2(profile, 7);
    const auto epochs = sharded.run(bg2, 3.0);
    std::printf("\n----- sharded tier (shards=2, %zu monitors, %zu epochs)"
                " -----\n",
                scfg.monitor_count, epochs.size());
    const MetricsSnapshot ssnap = shard_tel.metrics.snapshot();
    for (std::size_t s = 0; s < sharded.tier().shard_count(); ++s) {
      const std::string label = "shard", value = std::to_string(s);
      std::printf("  shard %zu: %.0f summaries / %.0f rows aggregated, "
                  "%.0f refused, %.0f down epochs\n",
                  s,
                  counter_of(ssnap, telemetry::with_label(
                                        "jaal_shard_summaries_total", label,
                                        value)),
                  counter_of(ssnap, telemetry::with_label(
                                        "jaal_shard_rows_total", label,
                                        value)),
                  counter_of(ssnap, telemetry::with_label(
                                        "jaal_shard_summaries_lost_total",
                                        label, value)),
                  counter_of(ssnap, telemetry::with_label(
                                        "jaal_shard_down_epochs_total",
                                        label, value)));
    }
  }

  // --- 6. Exports: the operator-facing dumps.
  {
    std::ofstream prom("jaal_telemetry_report.prom");
    prom << telemetry::prometheus_text(snap);
  }
  {
    std::ofstream jsonl("jaal_telemetry_report.jsonl");
    jsonl << telemetry::to_jsonl(snap, spans);
  }
  {
    // Wall-clock Chrome trace: load in Perfetto (ui.perfetto.dev) or
    // chrome://tracing to see the epoch pipeline laid out on a timeline.
    std::ofstream trace("jaal_telemetry_report.trace.json");
    trace << telemetry::export_chrome_trace(spans);
  }
  {
    // Deterministic variants: unit-weight trace (byte-identical across
    // runs/threads/shards) and the profiler's stage table as JSONL.
    telemetry::ChromeTraceOptions det;
    det.mode = telemetry::DurationMode::kDeterministic;
    std::ofstream trace("jaal_telemetry_report.det.trace.json");
    trace << telemetry::export_chrome_trace(spans, det);
    std::ofstream pj("jaal_telemetry_report.profile.jsonl");
    pj << profile_report.to_jsonl();
  }
  std::printf("\nwrote jaal_telemetry_report.prom, "
              "jaal_telemetry_report.jsonl,\n      "
              "jaal_telemetry_report.trace.json (Perfetto-loadable), "
              "jaal_telemetry_report.det.trace.json\n      "
              "and jaal_telemetry_report.profile.jsonl\n");
  return 0;
}
