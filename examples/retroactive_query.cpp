// Retroactive rule replay — the ISP-scale operation the paper's summaries
// make possible: ask a question you did not know to ask while the traffic
// was live.
//
// A deployment runs for a while persisting its epoch summaries to a
// .jstore directory (JaalConfig::store_dir).  Its ruleset does NOT include
// a port-scan rule, so the distributed scan hiding in the traffic never
// raised an alert.  Afterwards an analyst writes the missing Snort rule,
// translates it, and replays it over the *stored summaries* — no raw
// packets, no re-capture — and the scan surfaces from last hour's history.
//
// The example self-checks the store's headline guarantee: the replayed
// alerts are byte-identical to a from-scratch live run that had the new
// rule all along (feedback-free on both sides — raw packets are gone in
// replay, so the equivalent live mode is feedback_enabled=false).
//
//   $ ./retroactive_query            # human-readable walk-through
//   $ ./retroactive_query --json     # one JSON line + exit code (CI mode)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "jaal.hpp"

namespace {

using namespace jaal;

// The rule the live deployment was missing, written the day after.
constexpr const char* kNewRuleText =
    R"(alert tcp any any -> $HOME_NET any (msg:"Distributed port scan"; flags:S; detection_filter: count 200, seconds 2; jaal_raw_count: 120; jaal_variance: tcp.dst_port, 0.004; classtype:attempted-recon; sid:1000003; rev:1;))";

core::JaalConfig deployment_config(const std::string& store_dir) {
  core::JaalConfig cfg;
  cfg.monitor_count = 4;
  cfg.epoch_seconds = 0.08;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 300;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  cfg.engine.default_thresholds = {0.008, 0.03};
  // Replay equivalence is defined against feedback-free inference (stored
  // summaries have no raw packets behind them), so the live runs here are
  // feedback-free too.
  cfg.engine.feedback_enabled = false;
  cfg.store_dir = store_dir;
  return cfg;
}

/// Background traffic with a distributed port scan mixed in; identical
/// packets on every call (seeded).
struct Traffic {
  trace::BackgroundTraffic background;
  attack::PortScan scan;
  trace::TrafficMix mix;
  explicit Traffic()
      : background(trace::trace1_profile(), /*seed=*/5),
        scan([] {
          attack::AttackConfig a;
          a.victim_ip = core::evaluation_victim_ip();
          a.packets_per_second = 20000.0;
          a.start_time = 0.10;
          a.seed = 6;
          return a;
        }()),
        mix(background, {&scan}, 0.10) {}
};

std::vector<std::string> alert_lines(
    const std::vector<store::ReplayEpoch>& epochs) {
  std::vector<std::string> lines;
  for (const auto& e : epochs) {
    for (const auto& a : e.alerts) {
      lines.push_back(inference::alert_to_json(a, e.end_time));
    }
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const auto store_dir =
      std::filesystem::temp_directory_path() / "jaal_retroactive_query";
  std::filesystem::remove_all(store_dir);

  // ---- Yesterday: the live deployment, missing the port-scan rule. ----
  const core::JaalConfig cfg = deployment_config(store_dir.string());
  const auto all_rules = rules::parse_rules(rules::default_ruleset_text(),
                                            core::evaluation_rule_vars());
  std::vector<rules::Rule> live_rules;
  for (const auto& r : all_rules) {
    if (r.sid != 1000003) live_rules.push_back(r);  // no port-scan rule
  }

  std::size_t live_epochs = 0, live_alerts = 0;
  {
    core::JaalController jaal(cfg, live_rules);
    Traffic traffic;
    for (const auto& epoch : jaal.run(traffic.mix, 0.5)) {
      ++live_epochs;
      live_alerts += epoch.alerts.size();
    }
  }
  if (!json) {
    std::printf("live run: %zu epochs, %zu alert(s) — the scan went "
                "unnoticed (no rule for it)\n",
                live_epochs, live_alerts);
  }

  // ---- Today: translate the new rule, replay it over the store. ----
  const auto new_rule =
      rules::parse_rules(kNewRuleText, core::evaluation_rule_vars());
  // Replay drives the tier's root engine; the replayer is shard-agnostic
  // (summaries were stored in arrival order), so the same call handles
  // stores written by sharded deployments.
  shard::InferenceTier tier({}, new_rule, cfg.engine);
  store::StoreReplayer replayer(
      {store_dir.string(), cfg.store_epochs_per_shard});
  const auto replayed = replayer.replay(tier.engine(), cfg.engine.tau_c_scale);
  const auto replay_lines = alert_lines(replayed);
  if (!json) {
    std::printf("replay over stored summaries with the new rule: "
                "%zu epochs, %zu alert(s)\n",
                replayed.size(), replay_lines.size());
    for (const auto& e : replayed) {
      for (const auto& a : e.alerts) {
        std::printf("  t=%.2fs sid %u: %s (matched %llu packets%s)\n",
                    e.end_time, a.sid, a.msg.c_str(),
                    static_cast<unsigned long long>(a.matched_packets),
                    a.distributed ? ", distributed" : "");
      }
    }
  }

  // ---- Self-check: replay == a live run that had the rule all along. ----
  std::vector<std::string> reference_lines;
  {
    core::JaalConfig ref_cfg = cfg;
    ref_cfg.store_dir.clear();  // the reference run persists nothing
    core::JaalController jaal(ref_cfg, new_rule);
    Traffic traffic;
    for (const auto& epoch : jaal.run(traffic.mix, 0.5)) {
      for (const auto& a : epoch.alerts) {
        reference_lines.push_back(
            inference::alert_to_json(a, epoch.end_time));
      }
    }
  }
  const bool found_scan = !replay_lines.empty();
  const bool identical = replay_lines == reference_lines;

  if (json) {
    std::printf(
        "{\"live_epochs\":%zu,\"live_alerts\":%zu,\"replayed_epochs\":%zu,"
        "\"replay_alerts\":%zu,\"found_scan\":%s,\"byte_identical\":%s}\n",
        live_epochs, live_alerts, replayed.size(), replay_lines.size(),
        found_scan ? "true" : "false", identical ? "true" : "false");
  } else if (identical) {
    std::printf("self-check: replayed alerts are byte-identical to a "
                "from-scratch run with the new rule (%zu line(s))\n",
                reference_lines.size());
  } else {
    std::printf("self-check FAILED: replay %zu line(s), reference %zu\n",
                replay_lines.size(), reference_lines.size());
  }

  std::filesystem::remove_all(store_dir);
  return found_scan && identical ? 0 : 1;
}
