// Payload-based detection demo (§10 extension): build term-frequency
// summaries over packet payloads and match keyword rules against them —
// the paper's sketch of extending Jaal beyond headers.
//
//   $ ./payload_detect [inject_rate]
#include <cstdio>
#include <cstdlib>

#include "jaal.hpp"

int main(int argc, char** argv) {
  using namespace jaal::payload;
  const double inject_rate = argc > 1 ? std::atof(argv[1]) : 0.08;

  const Vocabulary vocab = default_vocabulary();
  std::printf("tracking %zu terms:", vocab.size());
  for (const auto& term : vocab.terms()) std::printf(" '%s'", term.c_str());
  std::printf("\n\n");

  // A batch of payloads: benign web/mail/TLS traffic with a fraction
  // carrying an executable-download marker.
  PayloadGenerator gen(/*seed=*/7, inject_rate);
  const auto payloads = gen.batch(1000);
  std::size_t truth = 0;
  for (const auto& p : payloads) {
    truth += p.find(".exe") != std::string::npos ? 1 : 0;
  }
  std::printf("batch: 1000 payloads, %zu carry '.exe' (inject rate %.2f)\n",
              truth, inject_rate);

  // Summarize: term matrix -> rank reduction -> k-means++ (32 centroids).
  PayloadSummarizerConfig cfg;
  const PayloadSummary summary = summarize_payloads(vocab, payloads, cfg);
  std::printf("summary: %zu centroids x %zu terms (vs 1000 raw payloads)\n",
              summary.centroids.rows(), vocab.size());

  // Keyword rules, matched against the summary alone.
  const std::vector<KeywordRule> rules = {
      {".exe", 15, "executable download burst"},
      {"powershell", 5, "script-host invocation"},
      {"union select", 3, "SQL injection probe"},
  };
  const auto alerts = match_keywords(vocab, summary, rules);
  if (alerts.empty()) {
    std::printf("\nno keyword rule fired\n");
  } else {
    std::printf("\nalerts:\n");
    for (const auto& alert : alerts) {
      std::printf("  '%s': %s (estimated %.0f packets)\n",
                  alert.term.c_str(), alert.msg.c_str(),
                  alert.estimated_packets);
    }
  }
  return 0;
}
