// Mirai case study (paper §2 and §8): watch the botnet's telnet scan get
// flagged by the variance postprocessor, then compare outbreak trajectories
// with and without the detect-and-shut-off response.
//
//   $ ./mirai_case_study
#include <cstdio>

#include "jaal.hpp"

int main() {
  using namespace jaal;

  std::printf("--- Part 1: detecting the scan itself ---\n");
  const auto ruleset = rules::parse_rules(rules::default_ruleset_text(),
                                          core::evaluation_rule_vars());

  trace::BackgroundTraffic background(trace::trace1_profile(), 3);
  attack::AttackConfig scan_cfg;
  scan_cfg.packets_per_second = 8000.0;
  scan_cfg.source_count = 40;  // infected devices scanning
  scan_cfg.seed = 4;
  attack::MiraiScan scan(scan_cfg);
  trace::TrafficMix mix(background, {&scan}, 0.10);

  core::JaalConfig cfg;
  cfg.monitor_count = 4;
  cfg.epoch_seconds = 0.04;
  cfg.summarizer.batch_size = 1000;
  cfg.summarizer.min_batch = 300;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  cfg.engine.default_thresholds = {0.01, 0.01};
  core::JaalController jaal(cfg, ruleset);

  double first_detection = -1.0;
  for (const auto& epoch : jaal.run(mix, 0.4)) {
    for (const auto& alert : epoch.alerts) {
      if (alert.sid == 1000006 || alert.sid == 1000007) {
        std::printf("t=%.2fs: %s (dst-IP variance %.4f, distributed=%d)\n",
                    epoch.end_time, alert.msg.c_str(), alert.variance,
                    alert.distributed ? 1 : 0);
        if (first_detection < 0.0) first_detection = epoch.end_time;
      }
    }
  }
  if (first_detection >= 0.0) {
    std::printf("scan first flagged after %.2f simulated seconds\n",
                first_detection);
  } else {
    std::printf("scan not detected (try a larger bot count)\n");
  }

  std::printf("\n--- Part 2: what detection buys (Fig. 8) ---\n");
  attack::MiraiConfig outbreak;
  outbreak.vulnerable_count = 150;
  outbreak.duration = 120.0;

  attack::ResponsePolicy response;
  response.enabled = true;
  response.detection_latency = 3.0;   // one 2s epoch + aggregation
  response.detection_probability = 0.95;

  const auto unchecked =
      attack::simulate_outbreak(outbreak, attack::ResponsePolicy{});
  const auto defended = attack::simulate_outbreak(outbreak, response);

  std::printf("%-8s %-12s %-12s\n", "t(s)", "unchecked", "with Jaal");
  for (std::size_t i = 0; i < unchecked.size(); i += 40) {
    std::printf("%-8.0f %-12zu %-12zu\n", unchecked[i].time,
                unchecked[i].total_infected, defended[i].total_infected);
  }
  std::printf(
      "\nunchecked outbreak reached %zu devices; with detection and\n"
      "shut-off it stayed at %zu (%zu devices disconnected).\n",
      unchecked.back().total_infected, defended.back().total_infected,
      defended.back().shut_off);
  return 0;
}
