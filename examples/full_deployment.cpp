// Full deployment walkthrough — every subsystem in one program:
//
//   topology        RocketFuel-like Abovenet map (367 routers)
//   placement       coverage-maximizing monitor placement over demands
//   flow groups     derived from routed paths (§6)
//   assignment      AssignmentService fed proto LoadUpdate frames
//   traffic         MAWI-like background + DDoS + Mirai scan (10% cap)
//   epochs          driven by the discrete-event engine
//   summaries       per-monitor SVD + k-means++ batches
//   inference       question vectors, postprocessor, feedback loop
//   correlation     m-of-w window confirmation (§10)
//   latency         summary-collection delay over the topology
//   output          operator JSONL alert log
//
//   $ ./full_deployment
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "jaal.hpp"

int main() {
  using namespace jaal;

  // --- 1. The network and where to watch it.
  const netsim::Topology topo =
      netsim::make_isp_topology(netsim::abovenet_profile(), 1);
  const auto demands = netsim::random_demands(topo, 400, 8000.0, 7);
  const auto sites = assign::place_monitors_coverage(topo, demands, 25);
  std::printf("topology %s: %zu routers; placed 25 monitors covering %.1f%% "
              "of demand\n",
              topo.name().c_str(), topo.node_count(),
              100.0 * assign::coverage_fraction(topo, demands, sites));

  // --- 2. Flow groups from routing; assignment service with load reports.
  std::vector<std::pair<netsim::NodeId, netsim::NodeId>> od_pairs;
  for (const auto& d : demands) od_pairs.emplace_back(d.src, d.dst);
  auto routed = assign::derive_monitor_groups(topo, sites, od_pairs);
  std::printf("derived %zu monitor groups (%zu OD pairs uncovered)\n",
              routed.groups.size(), routed.uncovered_pairs());
  core::AssignmentService assignment(routed.groups, sites.size());
  for (summarize::MonitorId m = 0; m < sites.size(); ++m) {
    // Initial load reports arrive as framed messages, §7-style.
    proto::FrameReader rx;
    rx.feed(proto::encode(proto::Message{proto::LoadUpdate{m, 0.0, 0}}));
    assignment.on_load_update(std::get<proto::LoadUpdate>(*rx.next()));
  }

  // --- 3. Traffic with two concurrent attacks.
  trace::BackgroundTraffic background(trace::trace1_profile(), 2);
  attack::AttackConfig ddos_cfg;
  ddos_cfg.victim_ip = core::evaluation_victim_ip();
  ddos_cfg.packets_per_second = 20000.0;
  ddos_cfg.start_time = 0.15;
  ddos_cfg.seed = 3;
  attack::DistributedSynFlood ddos(ddos_cfg);
  attack::AttackConfig scan_cfg = ddos_cfg;
  scan_cfg.packets_per_second = 8000.0;
  scan_cfg.start_time = 0.30;
  scan_cfg.seed = 4;
  attack::MiraiScan mirai(scan_cfg);
  trace::TrafficMix mix(background, {&ddos, &mirai}, 0.10);

  // --- 4. Monitors; flows stick to their assigned monitor.
  // k/n ~= 0.2 for the per-monitor batch sizes this deployment produces
  // (~350 packets/monitor/epoch across 25 monitors).
  summarize::SummarizerConfig scfg;
  scfg.batch_size = 1000;
  scfg.min_batch = 150;
  scfg.rank = 12;
  scfg.centroids = 64;
  std::vector<core::Monitor> monitors;
  for (summarize::MonitorId m = 0; m < sites.size(); ++m) {
    monitors.emplace_back(m, scfg);
  }
  std::unordered_map<packet::FlowKey, assign::MonitorIndex,
                     packet::FlowKeyHash>
      flow_to_monitor;
  auto monitor_for = [&](const packet::PacketRecord& pkt) {
    const packet::FlowKey key = pkt.flow();
    const auto it = flow_to_monitor.find(key);
    if (it != flow_to_monitor.end()) return it->second;
    // New flow: route it along a pseudo-OD pair and assign greedily within
    // the pair's monitor group.
    const std::size_t pair = packet::FlowKeyHash{}(key) % od_pairs.size();
    std::size_t group = routed.group_of_pair[pair];
    if (group == assign::RoutedGroups::kUncovered) group = 0;
    const auto chosen = assignment.assign(group, 10.0);
    flow_to_monitor.emplace(key, chosen);
    return chosen;
  };

  // --- 5. Inference engine with feedback + correlation + JSONL log.
  const auto ruleset = rules::parse_rules(rules::default_ruleset_text(),
                                          core::evaluation_rule_vars());
  inference::EngineConfig ecfg;
  ecfg.default_thresholds = {0.008, 0.03};
  ecfg.per_rule[1000005] = {0.015, 0.02};  // sockstress's usable range
  ecfg.verify_all_alerts = true;           // §10: raw-confirm every alert
  // The inference tier is the deployment-facing detection API; at the
  // default single shard it is the historical one-engine path bit-for-bit
  // (bump sharding.shards to fan monitors out across engine shards).
  shard::ShardingConfig sharding;
  shard::InferenceTier tier(sharding, ruleset, ecfg);
  inference::AlertCorrelator correlator({3, 2});
  std::ofstream log_file("full_deployment_alerts.jsonl");
  core::AlertLogger logger(log_file);

  const auto collection = netsim::collection_latency(
      topo, sites, sites.front(), /*summary bytes*/ 9000);
  std::printf("summary collection latency: worst %.0f ms over the map\n\n",
              1000.0 * collection.worst);

  // --- 6. Epochs driven by the event engine.
  netsim::EventQueue events;
  constexpr double kEpoch = 0.16;  // ~8500 pkts/epoch over this deployment
  constexpr double kRunFor = 0.96;
  std::uint64_t epoch_packets = 0;

  std::uint64_t epoch_index = 0;
  std::function<void()> close_epoch = [&] {
    tier.begin_epoch(epoch_index++);
    std::size_t reporting = 0;
    for (auto& monitor : monitors) {
      if (auto summary = monitor.flush_epoch()) {
        if (tier.add_summary(*summary)) ++reporting;
      }
    }
    const double now = events.now();
    if (reporting > 0) {
      tier.set_tau_c_scale(static_cast<double>(epoch_packets) / 2000.0);
      const auto alerts = tier.infer_epoch(
          [&](summarize::MonitorId id, const std::vector<std::size_t>& c) {
            return monitors.at(id).raw_packets_for(c);
          });
      const auto confirmed = correlator.observe(alerts);
      (void)logger.log_epoch(now, confirmed);
      std::printf("t=%.2fs: %zu/%zu monitors reported, %llu pkts, "
                  "%zu raw alerts, %zu confirmed\n",
                  now, reporting, monitors.size(),
                  static_cast<unsigned long long>(epoch_packets),
                  alerts.size(), confirmed.size());
      for (const auto& alert : confirmed) {
        std::printf("    sid %u: %s%s\n", alert.sid, alert.msg.c_str(),
                    alert.via_feedback ? " (confirmed via raw feedback)" : "");
      }
    }
    epoch_packets = 0;
    if (now + kEpoch <= kRunFor + 1e-9) events.schedule_in(kEpoch, close_epoch);
  };
  events.schedule(kEpoch, close_epoch);

  // Feed traffic between epoch events.
  while (!events.empty()) {
    const double next_epoch_time = events.now() + kEpoch;
    while (mix.peek_time() < next_epoch_time &&
           mix.peek_time() < kRunFor + kEpoch) {
      const auto pkt = mix.next();
      monitors[monitor_for(pkt)].observe(pkt);
      ++epoch_packets;
    }
    (void)events.step();
  }

  // --- 7. Wrap-up.
  core::CommStats comm;
  for (const auto& monitor : monitors) comm += monitor.comm();
  comm.feedback_bytes = tier.engine().stats().raw_bytes_fetched;
  std::printf(
      "\ntotals: %llu raw header bytes -> %llu summary + %llu feedback "
      "bytes (%.0f%% of raw)\n",
      static_cast<unsigned long long>(comm.raw_header_bytes),
      static_cast<unsigned long long>(comm.summary_bytes),
      static_cast<unsigned long long>(comm.feedback_bytes),
      100.0 * comm.overhead_ratio());
  std::printf("alert log: full_deployment_alerts.jsonl (%llu lines)\n",
              static_cast<unsigned long long>(logger.lines_written()));
  return 0;
}
