// Fault scenarios: detection quality versus control-plane loss.
//
// Runs the same seeded deployment (MAWI-like background plus a distributed
// SYN flood) under increasing monitor->engine summary loss, plus one
// crash-and-restart scenario, and prints a detection-quality table: the
// point of the resilience layer is that quality degrades *gracefully* with
// loss — partial epochs still aggregate and the engine rescales its count
// thresholds — instead of falling off a cliff.  Also emits the table as CSV
// (fault_scenarios_table.csv, the CI artifact) and self-checks that a
// seeded scenario reproduces byte-identically.
//
//   $ ./fault_scenarios
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "jaal.hpp"

namespace {

using namespace jaal;

constexpr double kAttackStart = 1.0;  // seconds into the run
constexpr double kDuration = 6.0;     // 1 s epochs -> 6 epochs per run

struct RunOutcome {
  double tpr = 0.0;            ///< Attack epochs that raised the flood sid.
  double fpr = 0.0;            ///< Benign epochs that raised it anyway.
  double mean_confidence = 1.0;  ///< Mean report fraction, attack epochs.
  /// Provenance columns: mean evidence margin over all raised alerts (how
  /// far inside its admitting threshold the average matched centroid sat)
  /// and how many feedback retrievals fell back to summary-only decisions.
  double mean_margin = 0.0;
  std::uint64_t feedback_fallbacks = 0;
  /// Summaries refused by a down inference shard (ShardCrashWindow).
  std::uint64_t shard_lost = 0;
  faults::TransportStats transport;
  std::string fingerprint;     ///< Serialized alerts (determinism check).
};

/// One 6-epoch deployment: 4 monitors, 1 s epochs, with (`attack` = true) or
/// without the flood.  Everything is seeded; faults come from `scenario`
/// (transport faults to the transport, shard_crashes to the inference tier,
/// which runs `shards` engine shards).
RunOutcome run_once(const faults::FaultScenario& scenario, bool attack,
                    std::size_t shards = 1) {
  trace::TraceProfile profile = trace::trace1_profile();
  profile.packets_per_second = 4000.0;
  trace::BackgroundTraffic background(profile, 7);
  attack::AttackConfig atk;
  atk.victim_ip = core::evaluation_victim_ip();
  atk.packets_per_second = 10000.0;
  atk.start_time = kAttackStart;
  atk.seed = 11;
  attack::DistributedSynFlood flood(atk);
  std::vector<trace::PacketSource*> attacks;
  if (attack) attacks.push_back(&flood);
  trace::TrafficMix mix(background, attacks, 0.10);

  core::JaalConfig cfg;
  cfg.summarizer.batch_size = 1200;
  cfg.summarizer.min_batch = 400;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 200;
  cfg.monitor_count = 4;
  cfg.epoch_seconds = 1.0;
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.faults = scenario;
  cfg.sharding.shards = shards;
  core::JaalController jaal(
      cfg, rules::parse_rules(rules::default_ruleset_text(),
                              core::evaluation_rule_vars()));

  const auto& sids = core::sids_for(packet::AttackType::kDistributedSynFlood);
  RunOutcome out;
  std::ostringstream fp;
  fp.precision(17);
  std::size_t attack_epochs = 0, benign_epochs = 0, tp = 0, fp_count = 0;
  double confidence_sum = 0.0;
  double margin_sum = 0.0;
  std::size_t margin_count = 0;
  for (const core::EpochResult& epoch : jaal.run(mix, kDuration)) {
    out.shard_lost += epoch.summaries_lost_shard;
    bool hit = false;
    for (const auto& alert : epoch.alerts) {
      for (std::uint32_t sid : sids) hit |= alert.sid == sid;
      fp << epoch.end_time << ' ' << alert.sid << ' '
         << alert.matched_packets << ' ' << alert.confidence << '\n';
      if (alert.provenance) {
        margin_sum += alert.provenance->mean_margin();
        ++margin_count;
        out.feedback_fallbacks +=
            alert.provenance->feedback.fallback ? 1 : 0;
      }
    }
    // An epoch is an attack window once the flood has been active for its
    // whole span (it starts mid-epoch at kAttackStart).
    const bool positive = attack && epoch.end_time >= kAttackStart + 1.0;
    if (positive) {
      ++attack_epochs;
      tp += hit ? 1 : 0;
      confidence_sum += epoch.report_fraction;
    } else if (!attack) {
      ++benign_epochs;
      fp_count += hit ? 1 : 0;
    }
  }
  if (attack_epochs > 0) {
    out.tpr = static_cast<double>(tp) / static_cast<double>(attack_epochs);
    out.mean_confidence = confidence_sum / static_cast<double>(attack_epochs);
  }
  if (benign_epochs > 0) {
    out.fpr =
        static_cast<double>(fp_count) / static_cast<double>(benign_epochs);
  }
  if (margin_count > 0) {
    out.mean_margin = margin_sum / static_cast<double>(margin_count);
  }
  out.transport = jaal.fault_stats();
  out.fingerprint = fp.str();
  return out;
}

struct Row {
  std::string label;
  RunOutcome attack;
  RunOutcome benign;
};

Row run_scenario(const std::string& label,
                 const faults::FaultScenario& scenario,
                 std::size_t shards = 1) {
  return {label, run_once(scenario, true, shards),
          run_once(scenario, false, shards)};
}

}  // namespace

int main() {
  // Loss sweep: i.i.d. summary drops at increasing rates.
  const double kLossRates[] = {0.00, 0.05, 0.15, 0.30, 0.50};
  std::vector<Row> rows;
  for (double rate : kLossRates) {
    faults::FaultScenario scenario;
    scenario.seed = 42;
    scenario.drop_rate = rate;
    char label[32];
    std::snprintf(label, sizeof label, "drop %.0f%%", 100.0 * rate);
    rows.push_back(run_scenario(label, scenario));
  }
  // Crash scenario: 5% loss plus monitor 2 down for epoch 3.
  {
    faults::FaultScenario scenario;
    scenario.seed = 42;
    scenario.drop_rate = 0.05;
    scenario.crashes.push_back({2, 3, 4});
    rows.push_back(run_scenario("5% + crash@3", scenario));
  }
  // Shard-loss scenario: a 4-shard inference tier with shard 1 down for
  // epoch 3 — the tier refuses that shard's summaries, the report fraction
  // drops, thresholds rescale; the deployment degrades instead of crashing.
  {
    faults::FaultScenario scenario;
    scenario.seed = 42;
    faults::ShardCrashWindow w;
    w.shard = 1;
    w.crash_epoch = 3;
    w.restart_epoch = 4;
    scenario.shard_crashes.push_back(w);
    rows.push_back(run_scenario("shard 1 down@3", scenario, /*shards=*/4));
  }

  std::printf("detection quality vs control-plane loss (4 monitors, "
              "6 x 1 s epochs, distributed SYN flood from t=%.0f s)\n\n",
              kAttackStart);
  std::printf("%-14s %9s %9s %9s %10s %11s %9s %6s %12s %10s\n", "scenario",
              "delivered", "dropped", "crashed", "shard_lost", "confidence",
              "TPR", "FPR", "mean_margin", "fallbacks");
  std::ofstream csv("fault_scenarios_table.csv");
  csv << "scenario,delivered,dropped,crashed_epochs,shard_lost,"
         "mean_confidence,tpr,fpr,mean_margin,feedback_fallbacks\n";
  for (const Row& row : rows) {
    const faults::TransportStats& t = row.attack.transport;
    std::printf(
        "%-14s %9llu %9llu %9llu %10llu %11.2f %9.2f %6.2f %12.4f %10llu\n",
        row.label.c_str(),
        static_cast<unsigned long long>(t.summaries_delivered),
        static_cast<unsigned long long>(t.summaries_dropped),
        static_cast<unsigned long long>(t.crashed_monitor_epochs),
        static_cast<unsigned long long>(row.attack.shard_lost),
        row.attack.mean_confidence, row.attack.tpr, row.benign.fpr,
        row.attack.mean_margin,
        static_cast<unsigned long long>(row.attack.feedback_fallbacks));
    csv << row.label << ',' << t.summaries_delivered << ','
        << t.summaries_dropped << ',' << t.crashed_monitor_epochs << ','
        << row.attack.shard_lost << ',' << row.attack.mean_confidence << ','
        << row.attack.tpr << ',' << row.benign.fpr << ','
        << row.attack.mean_margin << ',' << row.attack.feedback_fallbacks
        << '\n';
  }
  std::printf("\ntable written to fault_scenarios_table.csv\n");

  // Graceful-degradation check: moderate loss must not zero out detection.
  const double baseline_tpr = rows.front().attack.tpr;
  const double moderate_tpr = rows[2].attack.tpr;  // 15% loss
  if (baseline_tpr == 0.0) {
    std::printf("FAIL: no detection even without faults\n");
    return 1;
  }
  if (moderate_tpr < 0.5 * baseline_tpr) {
    std::printf("FAIL: detection fell off a cliff at 15%% loss "
                "(TPR %.2f -> %.2f)\n",
                baseline_tpr, moderate_tpr);
    return 1;
  }
  std::printf("graceful degradation: TPR %.2f (no loss) -> %.2f (15%% loss)"
              " -> %.2f (50%% loss)\n",
              baseline_tpr, moderate_tpr, rows[4].attack.tpr);

  // Shard-loss check: the outage must surface as refused summaries and a
  // dented confidence, never as a crash or a zeroed detection rate.
  const Row& shard_row = rows.back();
  if (shard_row.attack.shard_lost == 0) {
    std::printf("FAIL: shard crash window refused nothing\n");
    return 1;
  }
  if (shard_row.attack.tpr == 0.0) {
    std::printf("FAIL: one lost shard zeroed out detection\n");
    return 1;
  }
  std::printf("shard loss: %llu summaries refused, TPR held at %.2f\n",
              static_cast<unsigned long long>(shard_row.attack.shard_lost),
              shard_row.attack.tpr);

  // Determinism self-check: the seeded crash scenario reproduces exactly.
  faults::FaultScenario repeat;
  repeat.seed = 42;
  repeat.drop_rate = 0.05;
  repeat.crashes.push_back({2, 3, 4});
  if (run_once(repeat, true).fingerprint !=
      rows[rows.size() - 2].attack.fingerprint) {
    std::printf("FAIL: seeded scenario did not reproduce\n");
    return 1;
  }
  std::printf("determinism: seeded crash scenario reproduced byte-for-byte\n");
  return 0;
}
