// Rule workbench: inspect how Snort-subset rules become question vectors,
// and run both detection paths (raw Snort-style matching and summary-based
// inference) over a pcap trace.
//
//   $ ./rule_workbench                 # demo on generated traffic
//   $ ./rule_workbench capture.pcap    # analyze your own TCP/IPv4 capture
#include <cstdio>
#include <string>

#include "jaal.hpp"

namespace {

using namespace jaal;

void show_question(const rules::Question& q) {
  std::printf("  sid %u (%s): tau_c=%llu, %zu constrained field(s)\n", q.sid,
              q.msg.c_str(), static_cast<unsigned long long>(q.tau_c),
              q.constrained_fields());
  for (packet::FieldIndex f : packet::all_fields()) {
    const double v = q.q[packet::index(f)];
    if (v == rules::kWildcard) continue;
    std::printf("    %-16s = %.6f (raw %.0f)\n",
                std::string(packet::field_name(f)).c_str(), v,
                packet::denormalize_field(f, v));
  }
  if (q.variance) {
    std::printf("    postprocessor: var(%s) >= %g\n",
                std::string(packet::field_name(q.variance->field)).c_str(),
                q.variance->threshold);
  }
}

std::vector<packet::PacketRecord> demo_traffic() {
  trace::BackgroundTraffic background(trace::trace1_profile(), 11);
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.packets_per_second = 20000.0;
  acfg.seed = 12;
  attack::PortScan scan(acfg);
  trace::TrafficMix mix(background, {&scan}, 0.10);
  return trace::take(mix, 4000);
}

}  // namespace

int main(int argc, char** argv) {
  const auto ruleset = rules::parse_rules(rules::default_ruleset_text(),
                                          core::evaluation_rule_vars());

  std::printf("=== Rule translation (Snort rule -> question vector) ===\n");
  for (const auto& question : rules::translate(ruleset)) {
    show_question(question);
  }

  // Load traffic: a user pcap, or generated background + port scan.
  std::vector<packet::PacketRecord> window;
  if (argc > 1) {
    window = trace::read_pcap_file(argv[1]);
    std::printf("\nloaded %zu TCP/IPv4 packets from %s\n", window.size(),
                argv[1]);
  } else {
    window = demo_traffic();
    const std::string demo_path = "rule_workbench_demo.pcap";
    trace::write_pcap_file(demo_path, window);
    std::printf("\ngenerated %zu packets (background + port scan), saved to "
                "%s\n",
                window.size(), demo_path.c_str());
  }
  if (window.empty()) {
    std::printf("no packets to analyze\n");
    return 0;
  }

  // Path 1: traditional raw matching (what Snort would say).
  std::printf("\n=== Raw Snort-style analysis ===\n");
  const rules::RawMatcher matcher(ruleset);
  const double scale = static_cast<double>(window.size()) / 2000.0;
  for (const auto& alert : matcher.analyze(window, 2.0 * scale)) {
    std::printf("  sid %u: %s (matched %llu, max per source %llu%s)\n",
                alert.sid, alert.msg.c_str(),
                static_cast<unsigned long long>(alert.matched_packets),
                static_cast<unsigned long long>(alert.max_per_source),
                alert.variance_triggered ? ", variance triggered" : "");
  }

  // Path 2: summarize into centroids and run the inference engine — the
  // same verdicts from ~20% of the bytes.
  std::printf("\n=== Summary-based analysis (Jaal) ===\n");
  summarize::SummarizerConfig scfg;
  scfg.batch_size = window.size();
  scfg.min_batch = 1;
  scfg.rank = 12;
  scfg.centroids = std::max<std::size_t>(8, window.size() / 5);
  summarize::Summarizer summarizer(scfg);
  const auto out = summarizer.summarize(window);

  inference::Aggregator aggregator;
  aggregator.add(out.summary);
  const auto aggregate = aggregator.take();

  inference::EngineConfig ecfg;
  ecfg.default_thresholds = {0.015, 0.015};
  ecfg.feedback_enabled = true;
  ecfg.verify_all_alerts = true;  // §10 extension: raw-confirm every alert
  ecfg.tau_c_scale = scale;
  // One-shot tier (single shard): InferenceTier::infer over a pre-built
  // aggregate is the workbench-style entry point of the tier API.
  shard::InferenceTier tier({}, ruleset, ecfg);
  const inference::RawPacketFetcher fetcher =
      [&](summarize::MonitorId, const std::vector<std::size_t>& centroids) {
        std::vector<packet::PacketRecord> raw;
        for (std::size_t i = 0; i < window.size(); ++i) {
          for (std::size_t c : centroids) {
            if (out.assignment[i] == c) {
              raw.push_back(window[i]);
              break;
            }
          }
        }
        return raw;
      };
  for (const auto& alert : tier.infer(aggregate, fetcher)) {
    std::printf("  sid %u: %s (matched %llu packets, variance %.5f%s)\n",
                alert.sid, alert.msg.c_str(),
                static_cast<unsigned long long>(alert.matched_packets),
                alert.variance, alert.distributed ? ", distributed" : "");
  }
  std::printf("\nsummary size: %zu bytes vs %zu raw header bytes (%.0f%%)\n",
              summarize::wire_bytes(out.summary),
              window.size() * packet::kHeadersBytes,
              100.0 * static_cast<double>(summarize::wire_bytes(out.summary)) /
                  static_cast<double>(window.size() * packet::kHeadersBytes));
  return 0;
}
